//! # rss-workload — application models
//!
//! Traffic the transport carries in the experiments:
//!
//! * [`AppModel::Bulk`] — the memory-to-memory transfer of the paper's §4
//!   (an iperf-style source, optionally bounded);
//! * [`AppModel::Periodic`] — burst-every-interval writes, which exercise the
//!   application-limited (`SndLimTime_Sender`) paths and model request
//!   pipelining;
//! * parallel-stream helpers for the GridFTP-style workloads that motivated
//!   the authors (one logical transfer striped over N connections).
//!
//! Data flows one way (sender → receiver) as in the paper's evaluation;
//! request/response *think time* is modelled by the periodic writer rather
//! than by reversing the data path.

#![warn(missing_docs)]

use rss_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What the sending application does on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppModel {
    /// Write continuously; `bytes = None` means until the run ends.
    Bulk {
        /// Total transfer size; `None` = unbounded.
        bytes: Option<u64>,
    },
    /// Write `burst_bytes` every `interval`, `count` times (`None` =
    /// forever).
    Periodic {
        /// Bytes written per burst.
        burst_bytes: u64,
        /// Gap between the *starts* of consecutive bursts.
        interval: SimDuration,
        /// Number of bursts; `None` = unbounded.
        count: Option<u32>,
    },
}

impl AppModel {
    /// Bytes the sender should be created with (`None` = unbounded source).
    pub fn initial_bytes(&self) -> Option<u64> {
        match *self {
            AppModel::Bulk { bytes } => bytes,
            // Periodic sources start empty and are fed by write events.
            AppModel::Periodic { .. } => Some(0),
        }
    }

    /// Total bytes this model will ever write, if bounded.
    pub fn total_bytes(&self) -> Option<u64> {
        match *self {
            AppModel::Bulk { bytes } => bytes,
            AppModel::Periodic {
                burst_bytes, count, ..
            } => count.map(|c| burst_bytes * c as u64),
        }
    }
}

/// Drives an [`AppModel`]'s write schedule.
#[derive(Debug, Clone)]
pub struct AppDriver {
    model: AppModel,
    bursts_done: u32,
}

impl AppDriver {
    /// Create a driver for `model`.
    pub fn new(model: AppModel) -> Self {
        AppDriver {
            model,
            bursts_done: 0,
        }
    }

    /// The model being driven.
    pub fn model(&self) -> AppModel {
        self.model
    }

    /// The next write this application performs at-or-after `now`:
    /// `(when, bytes)`. `None` when the application is done writing.
    /// Call once per returned event; the driver advances internally.
    pub fn next_write(&mut self, start: SimTime) -> Option<(SimTime, u64)> {
        match self.model {
            AppModel::Bulk { .. } => None, // all data committed up front
            AppModel::Periodic {
                burst_bytes,
                interval,
                count,
            } => {
                if let Some(c) = count {
                    if self.bursts_done >= c {
                        return None;
                    }
                }
                let when = start + interval * self.bursts_done as u64;
                self.bursts_done += 1;
                Some((when, burst_bytes))
            }
        }
    }

    /// Number of bursts emitted so far.
    pub fn bursts_done(&self) -> u32 {
        self.bursts_done
    }
}

/// Split a transfer of `total_bytes` over `streams` parallel connections
/// (GridFTP-style striping): returns per-stream byte counts that sum exactly
/// to the total, differing by at most one byte.
pub fn stripe_bytes(total_bytes: u64, streams: u32) -> Vec<u64> {
    assert!(streams > 0);
    let base = total_bytes / streams as u64;
    let extra = (total_bytes % streams as u64) as u32;
    (0..streams).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_commits_everything_up_front() {
        let m = AppModel::Bulk {
            bytes: Some(1_000_000),
        };
        assert_eq!(m.initial_bytes(), Some(1_000_000));
        assert_eq!(m.total_bytes(), Some(1_000_000));
        let mut d = AppDriver::new(m);
        assert_eq!(d.next_write(SimTime::ZERO), None);
    }

    #[test]
    fn unbounded_bulk() {
        let m = AppModel::Bulk { bytes: None };
        assert_eq!(m.initial_bytes(), None);
        assert_eq!(m.total_bytes(), None);
    }

    #[test]
    fn periodic_schedule() {
        let m = AppModel::Periodic {
            burst_bytes: 5000,
            interval: SimDuration::from_millis(100),
            count: Some(3),
        };
        assert_eq!(m.initial_bytes(), Some(0));
        assert_eq!(m.total_bytes(), Some(15_000));
        let mut d = AppDriver::new(m);
        let start = SimTime::from_secs(1);
        assert_eq!(
            d.next_write(start),
            Some((SimTime::from_millis(1000), 5000))
        );
        assert_eq!(
            d.next_write(start),
            Some((SimTime::from_millis(1100), 5000))
        );
        assert_eq!(
            d.next_write(start),
            Some((SimTime::from_millis(1200), 5000))
        );
        assert_eq!(d.next_write(start), None);
        assert_eq!(d.bursts_done(), 3);
    }

    #[test]
    fn periodic_unbounded_keeps_going() {
        let m = AppModel::Periodic {
            burst_bytes: 100,
            interval: SimDuration::from_millis(10),
            count: None,
        };
        let mut d = AppDriver::new(m);
        for _ in 0..1000 {
            assert!(d.next_write(SimTime::ZERO).is_some());
        }
        assert!(m.total_bytes().is_none());
    }

    #[test]
    fn striping_conserves_bytes() {
        for streams in 1..=16 {
            for total in [0u64, 1, 999, 1_000_000, 12_345_677] {
                let parts = stripe_bytes(total, streams);
                assert_eq!(parts.len(), streams as usize);
                assert_eq!(parts.iter().sum::<u64>(), total);
                let min = parts.iter().min().unwrap();
                let max = parts.iter().max().unwrap();
                assert!(max - min <= 1, "uneven stripe: {parts:?}");
            }
        }
    }
}
