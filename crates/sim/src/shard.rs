//! Conservative-lookahead parallel execution of one simulation run.
//!
//! A run is partitioned into *units* — closed islands of model state (a host
//! pair and its access ports, or one direction of the shared bottleneck) that
//! interact only by exchanging timestamped messages with a minimum delivery
//! latency. Units are grouped into *domains*; each domain owns a private
//! calendar-wheel [`Engine`](crate::Engine) and runs on its own thread.
//!
//! # The lookahead bound
//!
//! Let `L` be the minimum latency of any cross-unit message leg (for the
//! dumbbell worlds built on top of this module: the smaller of the access-link
//! and haul-link propagation delays). Time advances in fixed windows
//! `[w, w+L)`. A message sent at time `t ∈ [w, w+L)` arrives at `t + leg ≥
//! w + L`, i.e. **no message sent during a window can be due inside that same
//! window** — so every domain may simulate the window to completion without
//! hearing from its peers. That is the classic conservative (CMB-style)
//! argument specialized to a fixed window equal to the static lookahead.
//!
//! Two barriers bound each window: after the first, every domain runs
//! `[w, w+L)` and publishes its outgoing messages into per-`(src, dst)`
//! domain rings; after the second, each domain drains its inbound rings and
//! injects the arrivals before the next window starts. The rings are locked
//! once per pair per window (a buffer swap), never per event.
//!
//! # Why results are bit-exact for any domain count
//!
//! Grouping units into domains must not change any observable state. The
//! argument:
//!
//! 1. **Units share no mutable state.** All interaction is via messages, and
//!    *every* cross-unit message goes through the ring — even when both units
//!    happen to share a domain. The union of per-unit state is therefore a
//!    product of independent machines driven by (local events ∪ injected
//!    arrivals).
//! 2. **Injection order is canonical.** Each domain sorts the arrivals it
//!    drains by `(arrival_time, source_unit, per-source sequence)` before
//!    injecting. The key is unique — a source unit's sequence counter never
//!    repeats — so the injected order is a pure function of the message set,
//!    not of ring layout or thread interleaving.
//! 3. **Within a window, event order per unit is reproducible.** The engine
//!    orders events by `(time, insertion-seq)`. Injections happen first (at
//!    the window boundary, in canonical order), and subsequent insertions are
//!    made by handlers in engine order. Two same-timestamp events belonging
//!    to *different* units may interleave differently under a different
//!    grouping, but by (1) they touch disjoint state, and every
//!    grouping-visible side effect (message sequence numbers, RNG draws,
//!    packet ids, counters) is kept per-unit — so per-unit event streams,
//!    and hence all results, are identical for any grouping.
//!
//! By induction over windows, every unit sees the same arrivals and produces
//! the same messages under any partition, including the single-domain one —
//! which is why `shards = 1` is the serial reference the parallel runs are
//! byte-compared against.

use crate::{SimDuration, SimTime};
use core::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, PoisonError};

/// A cross-unit message in flight, carrying its canonical ordering key.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Simulation time the message is due at its destination.
    pub time: SimTime,
    /// Unit that sent it (global unit id).
    pub src_unit: u32,
    /// Per-source-unit sequence number; `(time, src_unit, seq)` is unique.
    pub seq: u64,
    /// Unit it is addressed to (global unit id).
    pub dst_unit: u32,
    /// Payload.
    pub msg: M,
}

/// One domain of a sharded run: a group of units with a private scheduler.
pub trait Domain: Send {
    /// Message payload exchanged between units.
    type Msg: Send;
    /// Schedule an inbound arrival. Called in canonical order at a window
    /// boundary; `env.time` is never before the boundary.
    fn inject(&mut self, env: Envelope<Self::Msg>);
    /// Window-boundary hook (sampling, bookkeeping). The domain's state is
    /// quiescent at `now`.
    fn on_boundary(&mut self, now: SimTime);
    /// Run every event strictly before `end`; return events processed.
    fn run_window(&mut self, end: SimTime) -> u64;
    /// Final inclusive pass: run events up to and at `horizon`.
    fn finish(&mut self, horizon: SimTime) -> u64;
    /// Append messages produced since the last call to `into`, leaving the
    /// domain's internal buffer empty *with its capacity intact* — the
    /// executor calls this once per window per domain, and the contract
    /// exists so the steady state recycles both buffers instead of
    /// allocating a fresh `Vec` every window.
    fn drain_outgoing(&mut self, into: &mut Vec<Envelope<Self::Msg>>);
    /// Drain the count of flows newly completed since the last call.
    fn take_completions(&mut self) -> u64;
}

/// Merged result of a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Total events processed across all domains.
    pub events_processed: u64,
    /// Time the run ended: the horizon, or the window boundary at which the
    /// completion target was reached.
    pub end_time: SimTime,
    /// Whether the run stopped at the completion target before the horizon.
    pub stopped_early: bool,
}

/// A shard thread panicked during a sharded run.
///
/// [`run_sharded`] catches the panic, releases the lockstep barriers so the
/// sibling shards can observe the failure and exit cleanly at the next
/// window boundary, and returns this structured error instead of
/// deadlocking (or poisoning the join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the domain whose thread panicked first.
    pub shard: usize,
    /// The panic payload, stringified when possible.
    pub message: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} panicked: {}", self.shard, self.message)
    }
}

impl std::error::Error for ShardError {}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-`(src, dst)` domain message rings, swapped once per window.
struct Rings<M> {
    domains: usize,
    slots: Vec<Mutex<Vec<Envelope<M>>>>,
}

impl<M> Rings<M> {
    /// Ring capacity preallocated per pair; rings grow past this only under
    /// bursts, and the buffers are recycled so steady state never allocates.
    const CAPACITY: usize = 256;

    fn new(domains: usize) -> Self {
        Rings {
            domains,
            slots: (0..domains * domains)
                .map(|_| Mutex::new(Vec::with_capacity(Self::CAPACITY)))
                .collect(),
        }
    }

    /// Publish `src`'s messages for `dst`: one lock, one append.
    ///
    /// A poisoned slot (its lock holder panicked) is recovered with
    /// `into_inner`: the run is already doomed to a [`ShardError`], but the
    /// sibling shards must keep moving through the barrier protocol instead
    /// of amplifying the panic here.
    fn publish(&self, src: usize, dst: usize, buf: &mut Vec<Envelope<M>>) {
        let mut slot = self.slots[src * self.domains + dst]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        slot.append(buf);
    }

    /// Drain everything addressed to `dst` into `into` (one lock per source).
    /// Poison-tolerant for the same reason as [`Rings::publish`].
    fn drain_into(&self, dst: usize, into: &mut Vec<Envelope<M>>) {
        for src in 0..self.domains {
            let mut slot = self.slots[src * self.domains + dst]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            into.append(&mut slot);
        }
    }
}

/// Deterministically assign weighted units to `domains` groups.
///
/// Longest-processing-time greedy: heaviest unit first onto the least-loaded
/// domain, every tie broken by the lower index. The output depends only on
/// `(weights, domains)`, so a partition is reproducible across runs and
/// machines; every unit is assigned to exactly one domain.
pub fn partition_units(weights: &[u64], domains: usize) -> Vec<u32> {
    assert!(domains > 0, "need at least one domain");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut load = vec![0u64; domains];
    let mut assign = vec![0u32; weights.len()];
    for i in order {
        let mut best = 0usize;
        for d in 1..domains {
            if load[d] < load[best] {
                best = d;
            }
        }
        load[best] += weights[i].max(1);
        assign[i] = best as u32;
    }
    assign
}

/// Run `domains` under the conservative-lookahead window protocol.
///
/// * `unit_domain[u]` maps each global unit id to the domain that owns it.
/// * `lookahead` is the window size `L`; it must not exceed the minimum
///   cross-unit message latency (see the module docs) and must be positive.
/// * `stop_after_completions`: when `Some(n)`, the run ends at the first
///   window boundary at which `n` flow completions have been reported.
///
/// Returns the merged [`ShardStats`]; per-domain results stay in `domains`.
///
/// # Panic safety
///
/// Model code runs inside `catch_unwind`. When a domain panics, its thread
/// records the payload, raises a shared poison flag, and *keeps
/// participating in the barrier protocol*; every sibling observes the flag
/// at its next window boundary and exits, so the panic surfaces as a
/// [`ShardError`] within one lockstep window instead of deadlocking the
/// remaining shards at a barrier.
pub fn run_sharded<D: Domain>(
    domains: &mut [D],
    unit_domain: &[u32],
    lookahead: SimDuration,
    horizon: SimTime,
    stop_after_completions: Option<u64>,
) -> Result<ShardStats, ShardError> {
    assert!(!domains.is_empty(), "need at least one domain");
    assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
    let n = domains.len();
    let rings: Rings<D::Msg> = Rings::new(n);
    let barrier = Barrier::new(n);
    let completions = AtomicU64::new(0);
    let total_events = AtomicU64::new(0);
    // Two poison flags, split by the phase of the window protocol that may
    // set them. A single flag would race: a thread panicking in the run
    // phase sets it *between* the two barriers, so a slow sibling could
    // observe it at the post-barrier-1 checkpoint while a fast sibling
    // (which checked before the write landed) is already committed to
    // waiting at barrier 2 — and the barriers deadlock. With the split,
    // each flag is only read at a checkpoint that is barrier-separated from
    // every write site of that flag, so the value is frozen there and all
    // threads take the same branch.
    //
    // * `poison_inject` — set during the inject/boundary phase (between
    //   barrier 2 of the previous window and barrier 1); read only at the
    //   post-barrier-1 checkpoint.
    // * `poison_run` — set during the run/publish phase (between barrier 1
    //   and barrier 2); read only at the top-of-window checkpoint (after
    //   barrier 2).
    let poison_inject = AtomicBool::new(false);
    let poison_run = AtomicBool::new(false);
    let first_panic: Mutex<Option<ShardError>> = Mutex::new(None);

    let record_panic = |flag: &AtomicBool, shard: usize, payload: Box<dyn std::any::Any + Send>| {
        flag.store(true, Ordering::Release);
        let mut slot = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(ShardError {
                shard,
                message: panic_message(payload.as_ref()),
            });
        }
    };

    let mut results: Vec<Option<(SimTime, bool)>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (d, domain) in domains.iter_mut().enumerate() {
            let rings = &rings;
            let barrier = &barrier;
            let completions = &completions;
            let total_events = &total_events;
            let poison_inject = &poison_inject;
            let poison_run = &poison_run;
            let record_panic = &record_panic;
            handles.push(scope.spawn(move || {
                let mut w = SimTime::ZERO;
                let mut events = 0u64;
                let mut inbound: Vec<Envelope<D::Msg>> = Vec::new();
                // Per-thread scratch, all capacity-recycled across windows:
                // the domain drains into `outgoing`, which is routed into
                // the per-destination `outgoing_bufs`, which the rings
                // consume with an append. Steady state allocates nothing.
                let mut outgoing: Vec<Envelope<D::Msg>> = Vec::new();
                let mut outgoing_bufs: Vec<Vec<Envelope<D::Msg>>> =
                    (0..n).map(|_| Vec::new()).collect();
                let outcome = loop {
                    // Top-of-window checkpoint: barrier 2 of the previous
                    // window separates this read from every `poison_run`
                    // write site, so all threads read the same value here.
                    if poison_run.load(Ordering::Acquire) {
                        break None;
                    }
                    let stop = match catch_unwind(AssertUnwindSafe(|| {
                        rings.drain_into(d, &mut inbound);
                        inbound.sort_by_key(|e| (e.time, e.src_unit, e.seq));
                        for env in inbound.drain(..) {
                            domain.inject(env);
                        }
                        domain.on_boundary(w);
                        stop_after_completions
                            .is_some_and(|target| completions.load(Ordering::Acquire) >= target)
                    })) {
                        Ok(stop) => stop,
                        Err(payload) => {
                            record_panic(poison_inject, d, payload);
                            false
                        }
                    };
                    barrier.wait();
                    // Post-barrier-1 checkpoint: the barrier separates this
                    // read from every `poison_inject` write site. A
                    // panicking thread reported `stop = false`, so the
                    // poison check must come first to keep the verdict
                    // uniform.
                    if poison_inject.load(Ordering::Acquire) {
                        break None;
                    }
                    if stop {
                        break Some((w, true));
                    }
                    if w >= horizon {
                        // Arrivals due exactly at the horizon were injected
                        // above; messages produced now would be due after it.
                        match catch_unwind(AssertUnwindSafe(|| {
                            let e = domain.finish(horizon);
                            // Messages produced at the horizon would be due
                            // after it; drain and discard them.
                            outgoing.clear();
                            domain.drain_outgoing(&mut outgoing);
                            outgoing.clear();
                            e
                        })) {
                            Ok(e) => events += e,
                            Err(payload) => {
                                // Every thread breaks out of the loop on
                                // this branch regardless of the flag, so no
                                // checkpoint reads it — only the final
                                // error check after the join does.
                                record_panic(poison_run, d, payload);
                                break None;
                            }
                        }
                        break Some((horizon, false));
                    }
                    let end = (w + lookahead).min(horizon);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                        events += domain.run_window(end);
                        let done = domain.take_completions();
                        if done > 0 {
                            completions.fetch_add(done, Ordering::AcqRel);
                        }
                        domain.drain_outgoing(&mut outgoing);
                        for env in outgoing.drain(..) {
                            outgoing_bufs[unit_domain[env.dst_unit as usize] as usize].push(env);
                        }
                        for (dst, buf) in outgoing_bufs.iter_mut().enumerate() {
                            if !buf.is_empty() {
                                rings.publish(d, dst, buf);
                            }
                        }
                    })) {
                        record_panic(poison_run, d, payload);
                    }
                    barrier.wait();
                    w = end;
                };
                total_events.fetch_add(events, Ordering::AcqRel);
                outcome
            }));
        }
        for (d, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(outcome) => results.push(outcome),
                // A panic outside the catch_unwind regions (barrier/atomic
                // code) still surfaces as a structured error.
                Err(payload) => {
                    record_panic(&poison_run, d, payload);
                    results.push(None);
                }
            }
        }
    });

    if poison_inject.load(Ordering::Acquire) || poison_run.load(Ordering::Acquire) {
        let err = first_panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .unwrap_or(ShardError {
                shard: 0,
                message: "unknown shard failure".to_string(),
            });
        return Err(err);
    }
    let (end_time, stopped_early) = results[0].expect("non-poisoned run must have an outcome");
    debug_assert!(results
        .iter()
        .all(|&r| r == Some((end_time, stopped_early))));
    Ok(ShardStats {
        events_processed: total_events.load(Ordering::Acquire),
        end_time,
        stopped_early,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_deterministic_and_total() {
        let weights: Vec<u64> = (0..37).map(|i| (i * 7919) % 101).collect();
        for domains in 1..=5 {
            let a = partition_units(&weights, domains);
            let b = partition_units(&weights, domains);
            assert_eq!(a, b, "partition must be reproducible");
            assert_eq!(a.len(), weights.len(), "every unit assigned");
            assert!(a.iter().all(|&d| (d as usize) < domains));
            // Every domain gets work when there are enough units.
            if weights.len() >= domains {
                for d in 0..domains as u32 {
                    assert!(a.contains(&d), "domain {d} of {domains} left empty");
                }
            }
        }
    }

    #[test]
    fn partitioner_balances_equal_weights() {
        let weights = vec![1u64; 12];
        let assign = partition_units(&weights, 4);
        for d in 0..4u32 {
            assert_eq!(assign.iter().filter(|&&x| x == d).count(), 3);
        }
    }

    /// A unit that forwards a token around a ring of units with a fixed
    /// per-hop latency, counting hops. Exercises the full barrier loop.
    struct Token {
        unit: u32,
        next_unit: u32,
        hop: SimDuration,
        hops_seen: u64,
        seq: u64,
    }

    struct RingDomain {
        units: Vec<Token>,
        queued: Vec<(SimTime, usize, u64)>, // (due, local unit, token)
        outgoing: Vec<Envelope<u64>>,
    }

    impl RingDomain {
        fn forward(token: &mut Token, at: SimTime, payload: u64) -> Envelope<u64> {
            token.hops_seen += 1;
            token.seq += 1;
            Envelope {
                time: at + token.hop,
                src_unit: token.unit,
                seq: token.seq,
                dst_unit: token.next_unit,
                msg: payload + 1,
            }
        }
    }

    impl Domain for RingDomain {
        type Msg = u64;
        fn inject(&mut self, env: Envelope<u64>) {
            let local = self
                .units
                .iter()
                .position(|t| t.unit == env.dst_unit)
                .expect("misrouted");
            self.queued.push((env.time, local, env.msg));
        }
        fn on_boundary(&mut self, _now: SimTime) {}
        fn run_window(&mut self, end: SimTime) -> u64 {
            self.queued.sort_by_key(|&(t, u, m)| (t, u, m));
            let mut events = 0;
            while let Some(&(t, local, msg)) = self.queued.first() {
                if t >= end {
                    break;
                }
                self.queued.remove(0);
                let env = Self::forward(&mut self.units[local], t, msg);
                self.outgoing.push(env);
                events += 1;
            }
            events
        }
        fn finish(&mut self, horizon: SimTime) -> u64 {
            // Inclusive: tokens due exactly at the horizon still count.
            self.queued.sort_by_key(|&(t, u, m)| (t, u, m));
            let mut events = 0;
            while let Some(&(t, local, msg)) = self.queued.first() {
                if t > horizon {
                    break;
                }
                self.queued.remove(0);
                let env = Self::forward(&mut self.units[local], t, msg);
                self.outgoing.push(env);
                events += 1;
            }
            events
        }
        fn drain_outgoing(&mut self, into: &mut Vec<Envelope<u64>>) {
            into.append(&mut self.outgoing);
        }
        fn take_completions(&mut self) -> u64 {
            0
        }
    }

    fn run_ring(units: usize, domains: usize, horizon_ms: u64) -> (Vec<u64>, ShardStats) {
        let hop = SimDuration::from_millis(1);
        let weights = vec![1u64; units];
        let unit_domain = partition_units(&weights, domains);
        let mut doms: Vec<RingDomain> = (0..domains)
            .map(|_| RingDomain {
                units: Vec::new(),
                queued: Vec::new(),
                outgoing: Vec::new(),
            })
            .collect();
        for u in 0..units {
            doms[unit_domain[u] as usize].units.push(Token {
                unit: u as u32,
                next_unit: ((u + 1) % units) as u32,
                hop,
                hops_seen: 0,
                seq: 0,
            });
        }
        // Seed: unit 0 holds the token at t=0.
        let d0 = unit_domain[0] as usize;
        let local0 = doms[d0].units.iter().position(|t| t.unit == 0).unwrap();
        doms[d0].queued.push((SimTime::ZERO, local0, 0));
        let stats = run_sharded(
            &mut doms,
            &unit_domain,
            hop,
            SimTime::ZERO + SimDuration::from_millis(horizon_ms),
            None,
        )
        .expect("ring run must not fail");
        let mut hops = vec![0u64; units];
        for d in doms {
            for t in d.units {
                hops[t.unit as usize] = t.hops_seen;
            }
        }
        (hops, stats)
    }

    #[test]
    fn ring_token_is_grouping_invariant() {
        let serial = run_ring(6, 1, 50);
        for domains in 2..=4 {
            let parallel = run_ring(6, domains, 50);
            assert_eq!(serial.0, parallel.0, "{domains} domains diverged");
            assert_eq!(
                serial.1.events_processed, parallel.1.events_processed,
                "event counts diverged at {domains} domains"
            );
        }
        // 6 units, 1 ms per hop, horizon 50 ms inclusive: 51 hops total.
        assert_eq!(serial.0.iter().sum::<u64>(), 51);
    }

    /// A domain that panics inside `run_window` once the clock passes a
    /// trigger time; all other behavior forwards to the ring domain.
    struct PanickyDomain {
        inner: RingDomain,
        panic_at: SimTime,
    }

    impl Domain for PanickyDomain {
        type Msg = u64;
        fn inject(&mut self, env: Envelope<u64>) {
            self.inner.inject(env);
        }
        fn on_boundary(&mut self, now: SimTime) {
            self.inner.on_boundary(now);
        }
        fn run_window(&mut self, end: SimTime) -> u64 {
            if end > self.panic_at {
                panic!("injected fault at {end:?}");
            }
            self.inner.run_window(end)
        }
        fn finish(&mut self, horizon: SimTime) -> u64 {
            self.inner.finish(horizon)
        }
        fn drain_outgoing(&mut self, into: &mut Vec<Envelope<u64>>) {
            self.inner.drain_outgoing(into);
        }
        fn take_completions(&mut self) -> u64 {
            self.inner.take_completions()
        }
    }

    #[test]
    fn shard_panic_surfaces_as_error_without_deadlock() {
        // 4 units over 3 domains; the domain owning unit 1 blows up a few
        // windows in. Without panic capture the sibling threads would wait
        // forever at the lockstep barrier and this test would hang.
        let hop = SimDuration::from_millis(1);
        let units = 4usize;
        let unit_domain: Vec<u32> = vec![0, 1, 2, 0];
        let mut doms: Vec<PanickyDomain> = (0..3)
            .map(|d| PanickyDomain {
                inner: RingDomain {
                    units: Vec::new(),
                    queued: Vec::new(),
                    outgoing: Vec::new(),
                },
                panic_at: if d == 1 {
                    SimTime::from_millis(5)
                } else {
                    SimTime::MAX
                },
            })
            .collect();
        for u in 0..units {
            doms[unit_domain[u] as usize].inner.units.push(Token {
                unit: u as u32,
                next_unit: ((u + 1) % units) as u32,
                hop,
                hops_seen: 0,
                seq: 0,
            });
        }
        doms[0].inner.queued.push((SimTime::ZERO, 0, 0));
        let err = run_sharded(&mut doms, &unit_domain, hop, SimTime::from_secs(1), None)
            .expect_err("panicking domain must produce an error");
        assert_eq!(err.shard, 1);
        assert!(
            err.message.contains("injected fault"),
            "payload lost: {}",
            err.message
        );
        // The error must also format usefully.
        let text = err.to_string();
        assert!(text.contains("shard 1"), "{text}");
    }

    #[test]
    fn single_domain_panic_is_an_error_too() {
        let hop = SimDuration::from_millis(1);
        let mut doms = vec![PanickyDomain {
            inner: RingDomain {
                units: vec![Token {
                    unit: 0,
                    next_unit: 0,
                    hop,
                    hops_seen: 0,
                    seq: 0,
                }],
                queued: vec![(SimTime::ZERO, 0, 0)],
                outgoing: Vec::new(),
            },
            panic_at: SimTime::from_millis(2),
        }];
        let err =
            run_sharded(&mut doms, &[0], hop, SimTime::from_secs(1), None).expect_err("must error");
        assert_eq!(err.shard, 0);
    }
}
