//! The pending-event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a strictly
//! increasing insertion counter, so events scheduled for the same instant fire
//! in insertion order. That tie-break rule is what makes whole-simulation runs
//! bit-exact reproducible, which the experiment harness depends on.
//!
//! # Implementation: calendar wheel over a slot slab
//!
//! A paper-testbed run dispatches ~10^6 events, so the queue is the hottest
//! structure in the simulator. Pending events live in a slab of reusable
//! slots; ordering is kept by a single-revolution calendar wheel — a ring of
//! `WHEEL_BUCKETS` buckets of `GRANULE_NANOS` each, covering a sliding
//! window of roughly 134 ms — with a binary heap as the fallback for events
//! beyond the wheel horizon (retransmission timers and the like). Bucket
//! membership is a plain `Vec` of `(time, seq, slot)` entries; future
//! buckets are append-only and sorted wholesale when the cursor reaches
//! them, so scheduling is O(1) and only the bucket being consumed pays for
//! order.
//!
//! Cancellation is O(1) to *validate* (a slot-index probe plus a sequence
//! check — no hashing) and O(1) to *perform*: the event's slot is freed
//! immediately but its bucket (or far-heap) entry stays behind as a
//! tombstone, swept by a generation check when the pop cursor reaches it.
//! [`EventQueue::len`] is always exact — the live count is decremented at
//! cancel time, not at sweep time.
//!
//! The pop path consumes the cursor bucket through a moving head offset
//! (`cursor_head`) instead of `Vec::remove(0)`, so a bucket of depth *k* is
//! drained with zero memmoves and its allocation is reused for the next
//! revolution. [`EventQueue::pop_at_or_before`] fuses the engine's
//! peek-then-pop pair into one bucket scan.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of buckets in the calendar wheel (one revolution).
const WHEEL_BUCKETS: usize = 8192;
/// Width of one bucket in nanoseconds (~16 µs). The paper testbed schedules
/// an event every ~16 µs on average; the 10k-flow dumbbell clusters ~8× as
/// many into the same span, so the finer granule keeps the cursor bucket —
/// the only one inserts must keep sorted — shallow in both regimes.
const GRANULE_NANOS: u64 = 1 << 14;
/// Time span covered by one wheel revolution.
const HORIZON_NANOS: u64 = WHEEL_BUCKETS as u64 * GRANULE_NANOS;
/// Free-list terminator / "no slot" marker.
const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, usable for cancellation.
///
/// Carries the event's globally unique sequence number plus its slab slot, so
/// cancellation validates in O(1) (slot probe + sequence comparison) instead
/// of hashing into a tombstone set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

/// Where a live slot currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Free-list member; the payload is the next free slot (or [`NIL`]).
    Free(u32),
    /// In wheel bucket `idx`.
    Bucket(u32),
    /// In the far-future fallback heap.
    Far,
}

struct Slot<E> {
    /// Sequence number of the occupying event; stale for free slots. Acts as
    /// the generation check: an [`EventId`] is live iff its `seq` matches.
    seq: u64,
    time: SimTime,
    loc: Loc,
    event: Option<E>,
}

/// A bucket entry: the sort key is carried inline so ordering, liveness
/// checks and tombstone sweeps never dereference the slab. Entries outlive
/// their event (lazy cancellation), which is safe exactly because the key is
/// self-contained.
#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    time_ns: u64,
    seq: u64,
    slot: u32,
}

/// Cheap always-on activity counters, one per queue. Plain unconditional
/// `u64` increments on paths that already touch the same cache lines —
/// branch-free whether or not anyone reads them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Live events removed through the pop path.
    pub pops: u64,
    /// Events placed directly into a wheel bucket at schedule time.
    pub placed_wheel: u64,
    /// Events that overflowed to the far-future heap at schedule time.
    pub placed_far: u64,
    /// Far-heap events migrated into the wheel as the window advanced.
    pub far_migrations: u64,
    /// Live events cancelled before firing.
    pub cancelled: u64,
    /// Dead (cancelled) entries swept past by pops, peeks and heap cleaning.
    pub tombstones_swept: u64,
}

impl QueueCounters {
    /// Fraction of scheduled events that went straight into the wheel
    /// (vs overflowing to the far heap). 1.0 for an idle queue.
    pub fn wheel_hit_rate(&self) -> f64 {
        if self.scheduled == 0 {
            1.0
        } else {
            self.placed_wheel as f64 / self.scheduled as f64
        }
    }

    /// Dead entries swept per successful pop. 0.0 for an idle queue.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.pops == 0 {
            0.0
        } else {
            self.tombstones_swept as f64 / self.pops as f64
        }
    }

    /// Accumulate another queue's counters (used when a sharded run merges
    /// its per-domain engines).
    pub fn merge(&mut self, other: &QueueCounters) {
        self.scheduled += other.scheduled;
        self.pops += other.pops;
        self.placed_wheel += other.placed_wheel;
        self.placed_far += other.placed_far;
        self.far_migrations += other.far_migrations;
        self.cancelled += other.cancelled;
        self.tombstones_swept += other.tombstones_swept;
    }
}

/// Far-heap entry: ordering only, payload stays in the slab.
struct Far {
    time: SimTime,
    seq: u64,
    slot: u32,
}

// Max-heap with reversed comparisons pops the earliest (time, seq) first.
impl PartialEq for Far {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of future events.
///
/// Near-future events (within ~134 ms of the wheel cursor) sit in calendar
/// buckets; far-future events overflow to a heap and migrate into the wheel
/// as the cursor advances. Pop order is exactly ascending `(time, seq)`.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// `buckets[(t / GRANULE) % WHEEL_BUCKETS]`, each sorted ascending by
    /// `(time, seq)`. The cursor bucket additionally absorbs any event at or
    /// before the current granule, so its first live entry is the global
    /// minimum. Entries may be tombstones (cancelled events); liveness is a
    /// slab generation check.
    buckets: Vec<Vec<WheelEntry>>,
    /// Bucket index the wheel window starts at; always equals
    /// `(wheel_start / GRANULE) % WHEEL_BUCKETS`.
    cursor: usize,
    /// Consumed prefix of the cursor bucket: entries below this offset have
    /// been popped or swept. Only the cursor bucket is ever partially
    /// consumed; it is cleared (capacity kept) when the prefix reaches the
    /// end.
    cursor_head: usize,
    /// Lower bound (nanos, granule-aligned) of the cursor bucket.
    wheel_start: u64,
    far: BinaryHeap<Far>,
    /// Live events resident in wheel buckets.
    in_wheel: usize,
    /// All live events (wheel + far).
    live: usize,
    next_seq: u64,
    counters: QueueCounters,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_head: 0,
            wheel_start: 0,
            far: BinaryHeap::new(),
            in_wheel: 0,
            live: 0,
            next_seq: 0,
            counters: QueueCounters::default(),
        }
    }

    fn alloc_slot(&mut self, seq: u64, time: SimTime, event: E) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            let Loc::Free(next) = s.loc else {
                unreachable!("free list head not free");
            };
            self.free_head = next;
            s.seq = seq;
            s.time = time;
            s.event = Some(event);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slot index overflow");
            self.slots.push(Slot {
                seq,
                time,
                loc: Loc::Free(NIL),
                event: Some(event),
            });
            slot
        }
    }

    fn free_slot(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        let event = s.event.take().expect("freeing empty slot");
        s.loc = Loc::Free(self.free_head);
        self.free_head = slot;
        event
    }

    /// True if a bucket entry still refers to a live event. Sequence numbers
    /// are never reused, so a matching `seq` identifies the exact event; the
    /// location check rejects a cancelled-but-not-yet-reused slot (freeing
    /// keeps the stale `seq` behind).
    #[inline]
    fn entry_live(&self, e: &WheelEntry) -> bool {
        let s = &self.slots[e.slot as usize];
        s.seq == e.seq && matches!(s.loc, Loc::Bucket(_))
    }

    /// Insert `slot` into bucket `idx`. Future buckets are append-only
    /// (unsorted) and sorted once, wholesale, when the cursor arrives —
    /// O(1) per insert instead of a memmove per insert. Only the cursor
    /// bucket, which is being consumed in order, takes a sorted insert.
    fn bucket_insert(&mut self, idx: usize, slot: u32) {
        self.slots[slot as usize].loc = Loc::Bucket(idx as u32);
        let entry = WheelEntry {
            time_ns: self.slots[slot as usize].time.as_nanos(),
            seq: self.slots[slot as usize].seq,
            slot,
        };
        let bucket = &mut self.buckets[idx];
        if idx == self.cursor {
            // The consumed prefix stays put; an overdue event must still land
            // after what already fired.
            let key = (entry.time_ns, entry.seq);
            let start = self.cursor_head;
            let pos = start + bucket[start..].partition_point(|e| (e.time_ns, e.seq) < key);
            bucket.insert(pos, entry);
        } else {
            bucket.push(entry);
        }
        self.in_wheel += 1;
    }

    /// Establish the cursor bucket's sort order on arrival. `seq` is unique,
    /// so `(time, seq)` is a total order and the unstable sort is
    /// deterministic. Tombstones from earlier revolutions carry older
    /// timestamps and sort to the front, where the sweep removes them first.
    fn sort_cursor_bucket(&mut self) {
        debug_assert_eq!(self.cursor_head, 0);
        self.buckets[self.cursor].sort_unstable_by_key(|e| (e.time_ns, e.seq));
    }

    /// The bucket an in-window timestamp belongs to: the cursor bucket for
    /// anything at or before the current granule (including overdue times),
    /// the modular granule bucket otherwise. Callers must have checked
    /// `t < wheel_start + HORIZON`.
    fn in_window_bucket(&self, t: u64) -> usize {
        debug_assert!(t < self.wheel_start.saturating_add(HORIZON_NANOS));
        if t < self.wheel_start.saturating_add(GRANULE_NANOS) {
            self.cursor
        } else {
            ((t / GRANULE_NANOS) % WHEEL_BUCKETS as u64) as usize
        }
    }

    /// Route a freshly allocated slot to its wheel bucket or the far heap.
    fn place(&mut self, slot: u32) {
        let t = self.slots[slot as usize].time.as_nanos();
        if t < self.wheel_start.saturating_add(HORIZON_NANOS) {
            let idx = self.in_window_bucket(t);
            self.bucket_insert(idx, slot);
            self.counters.placed_wheel += 1;
        } else {
            let s = &mut self.slots[slot as usize];
            s.loc = Loc::Far;
            self.far.push(Far {
                time: s.time,
                seq: s.seq,
                slot,
            });
            self.counters.placed_far += 1;
        }
    }

    /// Drop cancelled entries off the top of the far heap so `peek` can trust
    /// it with `&self`.
    fn clean_far_top(&mut self) {
        while let Some(top) = self.far.peek() {
            let s = &self.slots[top.slot as usize];
            if s.seq == top.seq && s.loc == Loc::Far {
                break;
            }
            self.far.pop();
            self.counters.tombstones_swept += 1;
        }
    }

    /// True if the far-heap entry still refers to a live event.
    fn far_entry_live(&self, f: &Far) -> bool {
        let s = &self.slots[f.slot as usize];
        s.seq == f.seq && s.loc == Loc::Far
    }

    /// Pull far-heap events that now fall inside the wheel window into their
    /// buckets.
    fn migrate_far(&mut self) {
        let end = self.wheel_start.saturating_add(HORIZON_NANOS);
        while let Some(top) = self.far.peek() {
            if !self.far_entry_live(top) {
                self.far.pop();
                continue;
            }
            if top.time.as_nanos() >= end {
                break;
            }
            let f = self.far.pop().expect("peeked entry vanished");
            let idx = self.in_window_bucket(f.time.as_nanos());
            self.bucket_insert(idx, f.slot);
            self.counters.far_migrations += 1;
        }
    }

    /// Move the wheel window to start at the granule of `nanos` (used when
    /// every bucket is empty and the next event is far away).
    fn jump_to(&mut self, nanos: u64) {
        debug_assert_eq!(self.in_wheel, 0);
        let granule = nanos / GRANULE_NANOS;
        self.wheel_start = granule * GRANULE_NANOS;
        self.cursor = (granule % WHEEL_BUCKETS as u64) as usize;
        self.sort_cursor_bucket();
        self.migrate_far();
    }

    /// Advance the cursor one granule, exposing one new back bucket and
    /// migrating far events that slid into the window.
    fn advance_cursor(&mut self) {
        self.cursor = (self.cursor + 1) % WHEEL_BUCKETS;
        self.wheel_start = self.wheel_start.saturating_add(GRANULE_NANOS);
        self.sort_cursor_bucket();
        self.migrate_far();
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.scheduled += 1;
        self.live += 1;
        let slot = self.alloc_slot(seq, at, event);
        self.place(slot);
        EventId { seq, slot }
    }

    /// Schedule `event` to fire `after` past the given current time.
    pub fn schedule_after(&mut self, now: SimTime, after: SimDuration, event: E) -> EventId {
        self.schedule_at(now + after, event)
    }

    /// Cancel a previously scheduled event. Returns true if the id was still
    /// pending (not yet fired and not already cancelled). Ids this queue
    /// never issued — including forged or foreign ids — are rejected.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.seq >= self.next_seq || (id.slot as usize) >= self.slots.len() {
            return false;
        }
        let s = &self.slots[id.slot as usize];
        if s.seq != id.seq {
            return false; // already fired/cancelled; the slot moved on
        }
        match s.loc {
            Loc::Free(_) => false,
            Loc::Bucket(_) => {
                // Lazy: free the slot now, leave the bucket entry behind as a
                // tombstone for the pop cursor to sweep. The live count stays
                // exact; only the entry lingers.
                self.in_wheel -= 1;
                self.live -= 1;
                self.counters.cancelled += 1;
                self.free_slot(id.slot);
                true
            }
            Loc::Far => {
                // The heap entry stays behind; it fails the generation check
                // when it surfaces. Keep the heap top live for `peek_time`.
                self.live -= 1;
                self.counters.cancelled += 1;
                self.free_slot(id.slot);
                self.clean_far_top();
                true
            }
        }
    }

    /// Remove and return the earliest live event at or before `limit`
    /// (in nanos); `None` lifts the bound. Shared scan behind [`Self::pop`]
    /// and [`Self::pop_at_or_before`] — one pass finds, bounds-checks and
    /// consumes the minimum, sweeping tombstones on the way.
    fn pop_bounded(&mut self, limit_ns: Option<u64>) -> Option<(SimTime, E)> {
        if self.live == 0 {
            return None;
        }
        loop {
            while self.cursor_head < self.buckets[self.cursor].len() {
                let entry = self.buckets[self.cursor][self.cursor_head];
                if self.entry_live(&entry) {
                    if limit_ns.is_some_and(|l| entry.time_ns > l) {
                        return None;
                    }
                    self.cursor_head += 1;
                    self.in_wheel -= 1;
                    self.live -= 1;
                    self.counters.pops += 1;
                    let event = self.free_slot(entry.slot);
                    return Some((SimTime::from_nanos(entry.time_ns), event));
                }
                self.cursor_head += 1;
                self.counters.tombstones_swept += 1;
            }
            // Cursor bucket exhausted: recycle its allocation for the next
            // revolution and move on.
            self.buckets[self.cursor].clear();
            self.cursor_head = 0;
            if self.in_wheel > 0 {
                self.advance_cursor();
                continue;
            }
            // Everything live is beyond the horizon: jump the window.
            self.clean_far_top();
            let t = self
                .far
                .peek()
                .expect("live count out of sync")
                .time
                .as_nanos();
            if limit_ns.is_some_and(|l| t > l) {
                return None;
            }
            self.jump_to(t);
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_bounded(None)
    }

    /// Remove and return the earliest live event, but only if its timestamp
    /// is `<= limit`; otherwise leave the queue untouched and return `None`.
    /// One bucket scan where a `peek_time` + `pop` pair would take two.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        self.pop_bounded(Some(limit.as_nanos()))
    }

    /// Remove and return the earliest live event strictly before `end`.
    pub fn pop_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        let limit = end.as_nanos().checked_sub(1)?;
        self.pop_bounded(Some(limit))
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        if self.in_wheel > 0 {
            // Buckets from the cursor forward partition time, so the first
            // bucket holding a live entry holds the minimum. The cursor
            // bucket is sorted (first live entry wins); later buckets are
            // unsorted until the cursor arrives, so take the min over their
            // live entries. Tombstones are skipped read-only (sweeping needs
            // `&mut`).
            for k in 0..WHEEL_BUCKETS {
                let idx = (self.cursor + k) % WHEEL_BUCKETS;
                let start = if k == 0 { self.cursor_head } else { 0 };
                let mut best: Option<u64> = None;
                for entry in &self.buckets[idx][start..] {
                    if self.entry_live(entry) {
                        if k == 0 {
                            return Some(SimTime::from_nanos(entry.time_ns));
                        }
                        best = Some(best.map_or(entry.time_ns, |b: u64| b.min(entry.time_ns)));
                    }
                }
                if let Some(t) = best {
                    return Some(SimTime::from_nanos(t));
                }
            }
            unreachable!("in_wheel > 0 but no live bucket entry");
        }
        // The far-heap top is kept live by every mutating operation.
        self.far.peek().map(|f| {
            debug_assert!(self.far_entry_live(f));
            f.time
        })
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Activity counters since construction.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.counters.scheduled
    }

    /// Total number of events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.counters.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "y")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(3), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(5), SimDuration::from_secs(2), "z");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "z")));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::ZERO, 1);
        q.schedule_at(SimTime::ZERO, 2);
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn foreign_or_forged_ids_are_rejected() {
        // Regression: cancelling an id this queue never issued used to poison
        // the tombstone set and underflow `len()`.
        let mut a: EventQueue<&str> = EventQueue::new();
        let mut b = EventQueue::new();
        a.schedule_at(SimTime::from_secs(1), "a0");
        for i in 0..5 {
            b.schedule_at(SimTime::from_secs(i), i);
        }
        let foreign = b.schedule_at(SimTime::from_secs(9), 9);
        assert!(!a.cancel(foreign), "never-issued id must be rejected");
        assert_eq!(a.len(), 1, "len must be unaffected by a rejected cancel");
        assert_eq!(a.cancelled_total(), 0);
        assert_eq!(a.pop(), Some((SimTime::from_secs(1), "a0")));
        assert_eq!(a.pop(), None);
    }

    #[test]
    fn stale_id_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "x")));
        assert!(!q.cancel(id), "fired event cannot be cancelled");
        assert_eq!(q.len(), 0);
        // The slot is reused by a new event; the stale id must not hit it.
        let id2 = q.schedule_at(SimTime::from_secs(2), "y");
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(id2));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_pop_in_order() {
        // Mix events straddling the wheel horizon (~134 ms) and far beyond.
        let mut q = EventQueue::new();
        let times = [
            5u64, 100, 130, 135, 200, 1_000, 5_000, 60_000, 60_000, 3_600_000,
        ];
        for (i, &ms) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(ms), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &ms)| (SimTime::from_millis(ms).as_nanos(), i))
            .collect();
        expect.sort();
        assert_eq!(popped, expect);
    }

    #[test]
    fn cancel_far_future_event() {
        let mut q = EventQueue::new();
        let near = q.schedule_at(SimTime::from_millis(1), "near");
        let far = q.schedule_at(SimTime::from_secs(10), "far");
        assert!(q.cancel(far));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.pop(), None);
        let _ = near;
    }

    #[test]
    fn peek_does_not_disturb_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "far-ish");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.schedule_at(SimTime::from_millis(1), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "far-ish")));
    }

    #[test]
    fn interleaves_inserts_below_popped_time() {
        // The queue is a plain priority queue: scheduling below an already
        // popped timestamp must still order correctly (the engine forbids it,
        // the queue does not).
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), "t1");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "t1")));
        q.schedule_at(SimTime::from_millis(1), "past");
        q.schedule_at(SimTime::from_secs(2), "t2");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "past")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "t2")));
    }

    #[test]
    fn pop_at_or_before_respects_the_bound() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(5)), None);
        assert_eq!(q.len(), 2, "a bounded miss must not consume anything");
        assert_eq!(
            q.pop_at_or_before(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), "a")),
            "the bound is inclusive"
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(19)), None);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_millis(25)),
            Some((SimTime::from_millis(20), "b"))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(1)), None);
    }

    #[test]
    fn pop_before_is_exclusive() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "a");
        assert_eq!(q.pop_before(SimTime::from_millis(10)), None);
        assert_eq!(q.pop_before(SimTime::ZERO), None, "end = 0 pops nothing");
        assert_eq!(
            q.pop_before(SimTime::from_nanos(SimTime::from_millis(10).as_nanos() + 1)),
            Some((SimTime::from_millis(10), "a"))
        );
    }

    #[test]
    fn bounded_miss_beyond_horizon_leaves_far_events_poppable() {
        // The bound check must also stop the wheel from jumping to a far
        // event it is not allowed to pop yet.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "far");
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(1)), None);
        assert_eq!(q.len(), 1);
        // An earlier event scheduled after the miss still pops first.
        q.schedule_at(SimTime::from_secs(5), "near");
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "far")));
    }

    #[test]
    fn lazy_cancel_tombstones_are_swept_at_pop() {
        let mut q = EventQueue::new();
        // All in one granule: the cancelled middle entries become tombstones
        // in the same bucket the survivors pop from.
        let t = |us: u64| SimTime::from_micros(us);
        let a = q.schedule_at(t(10), "a");
        let b = q.schedule_at(t(20), "b");
        let c = q.schedule_at(t(30), "c");
        let d = q.schedule_at(t(40), "d");
        assert!(q.cancel(b));
        assert!(q.cancel(c));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(40), "d")));
        assert_eq!(q.pop(), None);
        let counters = q.counters();
        assert_eq!(counters.cancelled, 2);
        assert_eq!(counters.tombstones_swept, 2, "both tombstones swept");
        assert_eq!(counters.pops, 2);
        let _ = (a, d);
    }

    #[test]
    fn counters_track_placement_and_migration() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1), "wheel");
        q.schedule_at(SimTime::from_secs(10), "far");
        let c = q.counters();
        assert_eq!(c.scheduled, 2);
        assert_eq!(c.placed_wheel, 1);
        assert_eq!(c.placed_far, 1);
        assert_eq!(c.far_migrations, 0);
        assert!((c.wheel_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "wheel")));
        // Popping the far event forces the window jump + migration.
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "far")));
        let c = q.counters();
        assert_eq!(c.far_migrations, 1);
        assert_eq!(c.pops, 2);
        assert_eq!(c.tombstone_ratio(), 0.0);
    }

    #[test]
    fn slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let id = q.schedule_at(SimTime::from_millis(round), round);
            if round % 2 == 0 {
                assert!(q.cancel(id));
            } else {
                assert!(q.pop().is_some());
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 2,
            "slab must recycle slots, grew to {}",
            q.slots.len()
        );
    }
}
