//! The pending-event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a strictly
//! increasing insertion counter, so events scheduled for the same instant fire
//! in insertion order. That tie-break rule is what makes whole-simulation runs
//! bit-exact reproducible, which the experiment harness depends on.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

// Manual impls: ordering must ignore the payload (E need not be Ord), and the
// heap is a max-heap so comparisons are reversed to pop the earliest first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of future events.
///
/// Cancellation is lazy: [`EventQueue::cancel`] marks the id dead and the slot
/// is discarded when it reaches the head, keeping both operations `O(log n)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let id = EventId(seq);
        self.heap.push(Scheduled {
            time: at,
            seq,
            id,
            event,
        });
        id
    }

    /// Schedule `event` to fire `after` past the given current time.
    pub fn schedule_after(&mut self, now: SimTime, after: SimDuration, event: E) -> EventId {
        self.schedule_at(now + after, event)
    }

    /// Cancel a previously scheduled event. Returns true if the id was still
    /// pending (not yet fired and not already cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id can only be cancelled if it has been handed out and not fired;
        // we cannot check "fired" cheaply, so popping skips dead ids instead.
        let fresh = self.cancelled.insert(id.0);
        if fresh {
            self.cancelled_total += 1;
        }
        fresh
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id.0) {
                continue;
            }
            return Some((s.time, s.event));
        }
        None
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.id.0) {
                let s = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&s.id.0);
                continue;
            }
            return Some(s.time);
        }
        None
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "y")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(3), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(5), SimDuration::from_secs(2), "z");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "z")));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::ZERO, 1);
        q.schedule_at(SimTime::ZERO, 2);
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }
}
