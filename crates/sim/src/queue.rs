//! The pending-event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a strictly
//! increasing insertion counter, so events scheduled for the same instant fire
//! in insertion order. That tie-break rule is what makes whole-simulation runs
//! bit-exact reproducible, which the experiment harness depends on.
//!
//! # Implementation: calendar wheel over a slot slab
//!
//! A paper-testbed run dispatches ~10^6 events, so the queue is the hottest
//! structure in the simulator. Pending events live in a slab of reusable
//! slots; ordering is kept by a single-revolution calendar wheel — a ring of
//! `WHEEL_BUCKETS` buckets of `GRANULE_NANOS` each, covering a sliding
//! window of roughly 134 ms — with a binary heap as the fallback for events
//! beyond the wheel horizon (retransmission timers and the like). Bucket
//! membership is a plain `Vec<u32>` of slot indices kept sorted by
//! `(time, seq)`, so the front bucket's head is always the global minimum.
//!
//! Cancellation is O(1) to *validate* (a slot-index probe plus a sequence
//! check — no hashing) and eagerly removes wheel-resident events; events in
//! the far heap are freed immediately and their heap entries skipped when
//! they surface, so [`EventQueue::len`] is always exact.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of buckets in the calendar wheel (one revolution).
const WHEEL_BUCKETS: usize = 1024;
/// Width of one bucket in nanoseconds (~131 µs; the paper testbed schedules
/// an event every ~16 µs on average, so buckets stay shallow).
const GRANULE_NANOS: u64 = 1 << 17;
/// Time span covered by one wheel revolution.
const HORIZON_NANOS: u64 = WHEEL_BUCKETS as u64 * GRANULE_NANOS;
/// Free-list terminator / "no slot" marker.
const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, usable for cancellation.
///
/// Carries the event's globally unique sequence number plus its slab slot, so
/// cancellation validates in O(1) (slot probe + sequence comparison) instead
/// of hashing into a tombstone set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

/// Where a live slot currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Free-list member; the payload is the next free slot (or [`NIL`]).
    Free(u32),
    /// In wheel bucket `idx`.
    Bucket(u32),
    /// In the far-future fallback heap.
    Far,
}

struct Slot<E> {
    /// Sequence number of the occupying event; stale for free slots. Acts as
    /// the generation check: an [`EventId`] is live iff its `seq` matches.
    seq: u64,
    time: SimTime,
    loc: Loc,
    event: Option<E>,
}

/// Far-heap entry: ordering only, payload stays in the slab.
struct Far {
    time: SimTime,
    seq: u64,
    slot: u32,
}

// Max-heap with reversed comparisons pops the earliest (time, seq) first.
impl PartialEq for Far {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of future events.
///
/// Near-future events (within ~134 ms of the wheel cursor) sit in calendar
/// buckets; far-future events overflow to a heap and migrate into the wheel
/// as the cursor advances. Pop order is exactly ascending `(time, seq)`.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// `buckets[(t / GRANULE) % WHEEL_BUCKETS]`, each sorted ascending by
    /// `(time, seq)`. The cursor bucket additionally absorbs any event at or
    /// before the current granule, so its head is the global minimum.
    buckets: Vec<Vec<u32>>,
    /// Bucket index the wheel window starts at; always equals
    /// `(wheel_start / GRANULE) % WHEEL_BUCKETS`.
    cursor: usize,
    /// Lower bound (nanos, granule-aligned) of the cursor bucket.
    wheel_start: u64,
    far: BinaryHeap<Far>,
    /// Live events resident in wheel buckets.
    in_wheel: usize,
    /// All live events (wheel + far).
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            wheel_start: 0,
            far: BinaryHeap::new(),
            in_wheel: 0,
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    fn alloc_slot(&mut self, seq: u64, time: SimTime, event: E) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            let Loc::Free(next) = s.loc else {
                unreachable!("free list head not free");
            };
            self.free_head = next;
            s.seq = seq;
            s.time = time;
            s.event = Some(event);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slot index overflow");
            self.slots.push(Slot {
                seq,
                time,
                loc: Loc::Free(NIL),
                event: Some(event),
            });
            slot
        }
    }

    fn free_slot(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        let event = s.event.take().expect("freeing empty slot");
        s.loc = Loc::Free(self.free_head);
        self.free_head = slot;
        event
    }

    /// Sorted insertion of `slot` into bucket `idx` by `(time, seq)`.
    fn bucket_insert(&mut self, idx: usize, slot: u32) {
        self.slots[slot as usize].loc = Loc::Bucket(idx as u32);
        let key = (
            self.slots[slot as usize].time,
            self.slots[slot as usize].seq,
        );
        let bucket = &mut self.buckets[idx];
        let pos = bucket.partition_point(|&s| {
            let e = &self.slots[s as usize];
            (e.time, e.seq) < key
        });
        bucket.insert(pos, slot);
        self.in_wheel += 1;
    }

    /// The bucket an in-window timestamp belongs to: the cursor bucket for
    /// anything at or before the current granule (including overdue times),
    /// the modular granule bucket otherwise. Callers must have checked
    /// `t < wheel_start + HORIZON`.
    fn in_window_bucket(&self, t: u64) -> usize {
        debug_assert!(t < self.wheel_start.saturating_add(HORIZON_NANOS));
        if t < self.wheel_start.saturating_add(GRANULE_NANOS) {
            self.cursor
        } else {
            ((t / GRANULE_NANOS) % WHEEL_BUCKETS as u64) as usize
        }
    }

    /// Route a freshly allocated slot to its wheel bucket or the far heap.
    fn place(&mut self, slot: u32) {
        let t = self.slots[slot as usize].time.as_nanos();
        if t < self.wheel_start.saturating_add(HORIZON_NANOS) {
            let idx = self.in_window_bucket(t);
            self.bucket_insert(idx, slot);
        } else {
            let s = &mut self.slots[slot as usize];
            s.loc = Loc::Far;
            self.far.push(Far {
                time: s.time,
                seq: s.seq,
                slot,
            });
        }
    }

    /// Drop cancelled entries off the top of the far heap so `peek` can trust
    /// it with `&self`.
    fn clean_far_top(&mut self) {
        while let Some(top) = self.far.peek() {
            let s = &self.slots[top.slot as usize];
            if s.seq == top.seq && s.loc == Loc::Far {
                break;
            }
            self.far.pop();
        }
    }

    /// True if the far-heap entry still refers to a live event.
    fn far_entry_live(&self, f: &Far) -> bool {
        let s = &self.slots[f.slot as usize];
        s.seq == f.seq && s.loc == Loc::Far
    }

    /// Pull far-heap events that now fall inside the wheel window into their
    /// buckets.
    fn migrate_far(&mut self) {
        let end = self.wheel_start.saturating_add(HORIZON_NANOS);
        while let Some(top) = self.far.peek() {
            if !self.far_entry_live(top) {
                self.far.pop();
                continue;
            }
            if top.time.as_nanos() >= end {
                break;
            }
            let f = self.far.pop().expect("peeked entry vanished");
            let idx = self.in_window_bucket(f.time.as_nanos());
            self.bucket_insert(idx, f.slot);
        }
    }

    /// Move the wheel window to start at the granule of `nanos` (used when
    /// every bucket is empty and the next event is far away).
    fn jump_to(&mut self, nanos: u64) {
        debug_assert_eq!(self.in_wheel, 0);
        let granule = nanos / GRANULE_NANOS;
        self.wheel_start = granule * GRANULE_NANOS;
        self.cursor = (granule % WHEEL_BUCKETS as u64) as usize;
        self.migrate_far();
    }

    /// Advance the cursor one granule, exposing one new back bucket and
    /// migrating far events that slid into the window.
    fn advance_cursor(&mut self) {
        self.cursor = (self.cursor + 1) % WHEEL_BUCKETS;
        self.wheel_start = self.wheel_start.saturating_add(GRANULE_NANOS);
        self.migrate_far();
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        let slot = self.alloc_slot(seq, at, event);
        self.place(slot);
        EventId { seq, slot }
    }

    /// Schedule `event` to fire `after` past the given current time.
    pub fn schedule_after(&mut self, now: SimTime, after: SimDuration, event: E) -> EventId {
        self.schedule_at(now + after, event)
    }

    /// Cancel a previously scheduled event. Returns true if the id was still
    /// pending (not yet fired and not already cancelled). Ids this queue
    /// never issued — including forged or foreign ids — are rejected.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.seq >= self.next_seq || (id.slot as usize) >= self.slots.len() {
            return false;
        }
        let s = &self.slots[id.slot as usize];
        if s.seq != id.seq {
            return false; // already fired/cancelled; the slot moved on
        }
        match s.loc {
            Loc::Free(_) => false,
            Loc::Bucket(idx) => {
                let key = (s.time, s.seq);
                let bucket = &mut self.buckets[idx as usize];
                let pos = bucket
                    .binary_search_by(|&c| {
                        let e = &self.slots[c as usize];
                        (e.time, e.seq).cmp(&key)
                    })
                    .expect("bucket entry missing for live slot");
                bucket.remove(pos);
                self.in_wheel -= 1;
                self.live -= 1;
                self.cancelled_total += 1;
                self.free_slot(id.slot);
                true
            }
            Loc::Far => {
                // The heap entry stays behind; it fails the generation check
                // when it surfaces. Keep the heap top live for `peek_time`.
                self.live -= 1;
                self.cancelled_total += 1;
                self.free_slot(id.slot);
                self.clean_far_top();
                true
            }
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.live == 0 {
            return None;
        }
        loop {
            if !self.buckets[self.cursor].is_empty() {
                let slot = self.buckets[self.cursor].remove(0);
                self.in_wheel -= 1;
                self.live -= 1;
                let time = self.slots[slot as usize].time;
                let event = self.free_slot(slot);
                return Some((time, event));
            }
            if self.in_wheel == 0 {
                // Everything live is beyond the horizon: jump the window.
                self.clean_far_top();
                let t = self.far.peek().expect("live count out of sync").time;
                self.jump_to(t.as_nanos());
            } else {
                self.advance_cursor();
            }
        }
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        if self.in_wheel > 0 {
            // Buckets from the cursor forward are in time order; the first
            // occupied one holds the minimum at its head.
            for k in 0..WHEEL_BUCKETS {
                let bucket = &self.buckets[(self.cursor + k) % WHEEL_BUCKETS];
                if let Some(&slot) = bucket.first() {
                    return Some(self.slots[slot as usize].time);
                }
            }
            unreachable!("in_wheel > 0 but all buckets empty");
        }
        // The far-heap top is kept live by every mutating operation.
        self.far.peek().map(|f| {
            debug_assert!(self.far_entry_live(f));
            f.time
        })
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "y")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.schedule_at(SimTime::from_secs(3), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(5), SimDuration::from_secs(2), "z");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "z")));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::ZERO, 1);
        q.schedule_at(SimTime::ZERO, 2);
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn foreign_or_forged_ids_are_rejected() {
        // Regression: cancelling an id this queue never issued used to poison
        // the tombstone set and underflow `len()`.
        let mut a: EventQueue<&str> = EventQueue::new();
        let mut b = EventQueue::new();
        a.schedule_at(SimTime::from_secs(1), "a0");
        for i in 0..5 {
            b.schedule_at(SimTime::from_secs(i), i);
        }
        let foreign = b.schedule_at(SimTime::from_secs(9), 9);
        assert!(!a.cancel(foreign), "never-issued id must be rejected");
        assert_eq!(a.len(), 1, "len must be unaffected by a rejected cancel");
        assert_eq!(a.cancelled_total(), 0);
        assert_eq!(a.pop(), Some((SimTime::from_secs(1), "a0")));
        assert_eq!(a.pop(), None);
    }

    #[test]
    fn stale_id_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "x")));
        assert!(!q.cancel(id), "fired event cannot be cancelled");
        assert_eq!(q.len(), 0);
        // The slot is reused by a new event; the stale id must not hit it.
        let id2 = q.schedule_at(SimTime::from_secs(2), "y");
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(id2));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_pop_in_order() {
        // Mix events straddling the wheel horizon (~134 ms) and far beyond.
        let mut q = EventQueue::new();
        let times = [
            5u64, 100, 130, 135, 200, 1_000, 5_000, 60_000, 60_000, 3_600_000,
        ];
        for (i, &ms) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(ms), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &ms)| (SimTime::from_millis(ms).as_nanos(), i))
            .collect();
        expect.sort();
        assert_eq!(popped, expect);
    }

    #[test]
    fn cancel_far_future_event() {
        let mut q = EventQueue::new();
        let near = q.schedule_at(SimTime::from_millis(1), "near");
        let far = q.schedule_at(SimTime::from_secs(10), "far");
        assert!(q.cancel(far));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.pop(), None);
        let _ = near;
    }

    #[test]
    fn peek_does_not_disturb_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "far-ish");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.schedule_at(SimTime::from_millis(1), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "far-ish")));
    }

    #[test]
    fn interleaves_inserts_below_popped_time() {
        // The queue is a plain priority queue: scheduling below an already
        // popped timestamp must still order correctly (the engine forbids it,
        // the queue does not).
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), "t1");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "t1")));
        q.schedule_at(SimTime::from_millis(1), "past");
        q.schedule_at(SimTime::from_secs(2), "t2");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "past")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "t2")));
    }

    #[test]
    fn slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let id = q.schedule_at(SimTime::from_millis(round), round);
            if round % 2 == 0 {
                assert!(q.cancel(id));
            } else {
                assert!(q.pop().is_some());
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 2,
            "slab must recycle slots, grew to {}",
            q.slots.len()
        );
    }
}
