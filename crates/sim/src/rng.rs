//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible from a single `u64` seed, independent of
//! the `rand` crate's unspecified `StdRng` algorithm, so the generator is
//! implemented here: xoshiro256++ seeded through SplitMix64 (the reference
//! seeding procedure). [`rand::RngCore`] is implemented so the generator still
//! composes with `rand` distributions where convenient.

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0, a fast, high-quality, small-state generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Deterministically seed from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derive an independent stream for a subcomponent. Streams with distinct
    /// `stream_id`s are statistically independent for practical purposes.
    pub fn derive(&self, stream_id: u64) -> SimRng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = SplitMix64::new(
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound). Panics if bound is zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range [lo, hi].
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean (for Poisson
    /// inter-arrival times in the cross-traffic generators).
    pub fn exp_with_mean(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean {mean}");
        // Inversion: -mean * ln(1 - U), with U in [0,1) so the argument is
        // in (0,1] and the log is finite.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Pareto-distributed sample (shape `alpha`, scale `xm`), heavy-tailed
    /// flow sizes for workload models.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "invalid pareto params");
        xm / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }
}

impl rand::RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_and_deterministic() {
        let root = SimRng::seed_from_u64(7);
        let mut s1 = root.derive(1);
        let mut s1b = root.derive(1);
        let mut s2 = root.derive(2);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_unbiased_coverage() {
        let mut r = SimRng::seed_from_u64(13);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::seed_from_u64(17);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::seed_from_u64(19);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp_with_mean(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(29);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn rngcore_fill_bytes_deterministic() {
        use rand::RngCore;
        let mut a = SimRng::seed_from_u64(31);
        let mut b = SimRng::seed_from_u64(31);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
