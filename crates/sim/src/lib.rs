//! # rss-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the *Restricted Slow-Start for TCP* reproduction. The
//! paper evaluated a Linux 2.4.19 kernel patch on a real 100 Mbit/s WAN; this
//! workspace reproduces that testbed as a simulation, and every higher-level
//! crate (network, host, TCP) is driven by this engine.
//!
//! Design goals:
//!
//! * **Determinism** — integer nanosecond clock, `(time, insertion-seq)` event
//!   ordering and a self-contained xoshiro256++ RNG make runs bit-exact
//!   reproducible from a `u64` seed.
//! * **Zero-cost genericity** — the engine is generic over the model's event
//!   type; there is no boxing or dynamic dispatch on the hot path.
//! * **Measurement built in** — [`TimeSeries`]/[`EventCounter`] capture the
//!   exact artifacts the paper reports (cumulative send-stall staircases,
//!   windowed throughput).
//!
//! ```
//! use rss_sim::{Engine, Model, Scheduler, SimDuration, SimTime};
//!
//! struct Counter { fired: u32 }
//! impl Model for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.after(SimDuration::from_millis(1), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule_at(SimTime::ZERO, ());
//! engine.run_to_completion();
//! assert_eq!(engine.model().fired, 10);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod series;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{Engine, Model, RunStats, Scheduler};
pub use queue::{EventId, EventQueue, QueueCounters};
pub use rng::{SimRng, SplitMix64};
pub use series::{EventCounter, TimeSeries};
pub use shard::{partition_units, run_sharded, Domain, Envelope, ShardError, ShardStats};
pub use stats::{convergence_time, jain_fairness, Histogram, Welford};
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
