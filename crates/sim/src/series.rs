//! Time-series recording for figures and experiment post-processing.
//!
//! Figure 1 of the paper is a *cumulative event count over time*; the
//! throughput plots are *windowed rates*. [`TimeSeries`] covers both: it
//! stores raw `(time, value)` samples and offers cumulative, binned and
//! integrated views.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A named sequence of timestamped samples, append-only in time order.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    name: String,
    times_ns: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times_ns: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample. Timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&last) = self.times_ns.last() {
            assert!(
                t.as_nanos() >= last,
                "samples must be time-ordered ({} < {last})",
                t.as_nanos()
            );
        }
        self.times_ns.push(t.as_nanos());
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// Iterate `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times_ns
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (SimTime::from_nanos(t), v))
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        match (self.times_ns.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((SimTime::from_nanos(t), v)),
            _ => None,
        }
    }

    /// Maximum value (NaN-free series assumed).
    pub fn max_value(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum value.
    pub fn min_value(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Arithmetic mean of the sample values (unweighted).
    pub fn mean_value(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Time-weighted mean, treating the series as a step function that holds
    /// each value until the next sample, evaluated over `[start, end]`.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if self.is_empty() || end <= start {
            return None;
        }
        let (s, e) = (start.as_nanos(), end.as_nanos());
        let mut acc = 0.0f64;
        let mut covered = 0u64;
        for i in 0..self.len() {
            let t0 = self.times_ns[i].max(s);
            let t1 = if i + 1 < self.len() {
                self.times_ns[i + 1].min(e)
            } else {
                e
            };
            if t1 > t0 {
                acc += self.values[i] * (t1 - t0) as f64;
                covered += t1 - t0;
            }
        }
        if covered == 0 {
            None
        } else {
            Some(acc / covered as f64)
        }
    }

    /// Step-function value at time `t` (value of the latest sample ≤ t).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let tn = t.as_nanos();
        match self.times_ns.partition_point(|&x| x <= tn) {
            0 => None,
            i => Some(self.values[i - 1]),
        }
    }

    /// Resample onto fixed bins of width `bin`: returns, for each bin,
    /// `(bin_end_time, sum of values of samples inside the bin)`.
    /// Useful for event-count series (each sample value 1.0).
    pub fn binned_sums(
        &self,
        start: SimTime,
        end: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(bin > SimDuration::ZERO, "zero bin width");
        let mut out = Vec::new();
        let mut bin_start = start;
        let mut idx = 0;
        while bin_start < end {
            let bin_end = (bin_start + bin).min(end);
            let mut sum = 0.0;
            while idx < self.len() && self.times_ns[idx] < bin_end.as_nanos() {
                if self.times_ns[idx] >= bin_start.as_nanos() {
                    sum += self.values[idx];
                }
                idx += 1;
            }
            out.push((bin_end, sum));
            bin_start = bin_end;
        }
        out
    }

    /// Cumulative sum view: `(time, running total)` for each sample.
    pub fn cumulative(&self) -> Vec<(SimTime, f64)> {
        let mut total = 0.0;
        self.iter()
            .map(|(t, v)| {
                total += v;
                (t, total)
            })
            .collect()
    }

    /// Render as CSV with a header; times in seconds.
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.len() * 24 + 32);
        s.push_str("time_s,");
        s.push_str(&self.name);
        s.push('\n');
        for (t, v) in self.iter() {
            s.push_str(&format!("{:.9},{v}\n", t.as_secs_f64()));
        }
        s
    }
}

/// Counts discrete events and exposes both the total and the event-time log.
/// This is exactly the shape of the paper's Figure 1 (cumulative send-stalls).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventCounter {
    times_ns: Vec<u64>,
}

impl EventCounter {
    /// Create an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event at `t`.
    pub fn record(&mut self, t: SimTime) {
        if let Some(&last) = self.times_ns.last() {
            debug_assert!(t.as_nanos() >= last, "events must be time-ordered");
        }
        self.times_ns.push(t.as_nanos());
    }

    /// Total number of events.
    pub fn count(&self) -> u64 {
        self.times_ns.len() as u64
    }

    /// Number of events at or before `t`.
    pub fn count_at(&self, t: SimTime) -> u64 {
        self.times_ns.partition_point(|&x| x <= t.as_nanos()) as u64
    }

    /// Event timestamps.
    pub fn times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.times_ns.iter().map(|&t| SimTime::from_nanos(t))
    }

    /// The cumulative staircase sampled at fixed intervals over `[0, end]`:
    /// `(sample_time, cumulative_count)`.
    pub fn staircase(&self, end: SimTime, step: SimDuration) -> Vec<(SimTime, u64)> {
        assert!(step > SimDuration::ZERO);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            out.push((t, self.count_at(t)));
            if t >= end {
                break;
            }
            t = (t + step).min(end);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("cwnd");
        s.push(ms(0), 2.0);
        s.push(ms(10), 4.0);
        s.push(ms(20), 8.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(8.0));
        assert_eq!(s.min_value(), Some(2.0));
        assert_eq!(s.mean_value(), Some(14.0 / 3.0));
        assert_eq!(s.last(), Some((ms(20), 8.0)));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut s = TimeSeries::new("x");
        s.push(ms(10), 1.0);
        s.push(ms(5), 2.0);
    }

    #[test]
    fn value_at_is_step_function() {
        let mut s = TimeSeries::new("x");
        s.push(ms(10), 1.0);
        s.push(ms(20), 2.0);
        assert_eq!(s.value_at(ms(5)), None);
        assert_eq!(s.value_at(ms(10)), Some(1.0));
        assert_eq!(s.value_at(ms(15)), Some(1.0));
        assert_eq!(s.value_at(ms(20)), Some(2.0));
        assert_eq!(s.value_at(ms(999)), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_weighs_durations() {
        let mut s = TimeSeries::new("x");
        s.push(ms(0), 0.0);
        s.push(ms(10), 10.0); // holds 10.0 for the rest
                              // Over [0, 20]: 0.0 for 10ms, 10.0 for 10ms -> 5.0.
        let m = s.time_weighted_mean(ms(0), ms(20)).unwrap();
        assert!((m - 5.0).abs() < 1e-9);
        // Over [10, 20]: all 10.0.
        let m = s.time_weighted_mean(ms(10), ms(20)).unwrap();
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn binned_sums_partition_events() {
        let mut s = TimeSeries::new("ev");
        for t in [1u64, 2, 3, 12, 13, 25] {
            s.push(ms(t), 1.0);
        }
        let bins = s.binned_sums(ms(0), ms(30), SimDuration::from_millis(10));
        let sums: Vec<f64> = bins.iter().map(|&(_, v)| v).collect();
        assert_eq!(sums, vec![3.0, 2.0, 1.0]);
        let total: f64 = sums.iter().sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn cumulative_monotone() {
        let mut s = TimeSeries::new("ev");
        s.push(ms(1), 1.0);
        s.push(ms(2), 1.0);
        s.push(ms(3), 1.0);
        let c = s.cumulative();
        assert_eq!(c[2].1, 3.0);
    }

    #[test]
    fn csv_shape() {
        let mut s = TimeSeries::new("v");
        s.push(ms(1), 2.5);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,v"));
        assert_eq!(lines.next(), Some("0.001000000,2.5"));
    }

    #[test]
    fn event_counter_staircase() {
        let mut c = EventCounter::new();
        c.record(ms(500));
        c.record(ms(1500));
        c.record(ms(1500));
        c.record(ms(7000));
        assert_eq!(c.count(), 4);
        assert_eq!(c.count_at(ms(499)), 0);
        assert_eq!(c.count_at(ms(500)), 1);
        assert_eq!(c.count_at(ms(1500)), 3);
        assert_eq!(c.count_at(ms(9999)), 4);
        let st = c.staircase(SimTime::from_secs(8), SimDuration::from_secs(1));
        assert_eq!(st.len(), 9);
        assert_eq!(st[0], (SimTime::ZERO, 0));
        assert_eq!(st[2].1, 3);
        assert_eq!(st[8].1, 4);
    }
}
