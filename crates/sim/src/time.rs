//! Simulation time types.
//!
//! Simulation time is kept as an integer count of nanoseconds since the start
//! of the run. Integer time makes event ordering exact: two runs with the same
//! seed execute the identical event sequence, which the reproduction relies on
//! (the paper's Figure 1 is a time series of discrete events).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An absolute instant on the simulation clock, in nanoseconds since t = 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting; not used for ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating at the maximum.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The wall-clock time to serialize `bytes` at `bits_per_sec` onto a link.
    ///
    /// This is the canonical rate → time conversion used by every transmitter
    /// in the simulator (NICs and router ports), so rounding is centralised
    /// here: round *up* to the next nanosecond so a transmitter can never send
    /// faster than its configured rate.
    #[inline]
    pub fn for_bytes_at_rate(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "zero link rate");
        let bits = bytes as u128 * 8;
        let nanos = (bits * NANOS_PER_SEC as u128).div_ceil(bits_per_sec as u128);
        SimDuration(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(60).as_secs_f64(), 0.060);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), NANOS_PER_SEC / 2);
        assert_eq!(SimTime::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(5));
        assert_eq!(d * 4, SimDuration::from_millis(20));
        assert_eq!(d / 5, SimDuration::from_millis(1));
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, SimTime::from_millis(15));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn serialization_delay_exact() {
        // 1500 bytes at 100 Mbit/s = 120 microseconds.
        let d = SimDuration::for_bytes_at_rate(1500, 100_000_000);
        assert_eq!(d, SimDuration::from_micros(120));
        // 40 bytes at 1 Gbit/s = 320 ns.
        let d = SimDuration::for_bytes_at_rate(40, 1_000_000_000);
        assert_eq!(d, SimDuration::from_nanos(320));
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1 byte at 3 bit/ns-ish rates must not round to a faster-than-rate time.
        let d = SimDuration::for_bytes_at_rate(1, 3_000_000_000);
        // 8 bits / 3 Gbit/s = 2.666.. ns -> must become 3.
        assert_eq!(d.as_nanos(), 3);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2)), "0.002000s");
    }
}
