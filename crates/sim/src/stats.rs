//! Streaming statistics used across the experiment harness.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm): numerically stable
/// and O(1) per sample, suitable for million-event simulation runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, or None if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen, or None if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bin histogram over a closed range; out-of-range samples clamp to the
/// edge bins so totals are conserved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi]` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram shape");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.bins.len() as f64) as isize).clamp(0, self.bins.len() as isize - 1)
            as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate quantile (by linear walk over bins); `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                let width = (self.hi - self.lo) / self.bins.len() as f64;
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// Jain's fairness index for a set of per-flow allocations:
/// `(Σx)² / (n · Σx²)`; 1.0 is perfectly fair, `1/n` is one flow hogging
/// everything. Degenerate inputs (no flows, or all allocations zero) read
/// as perfectly fair.
pub fn jain_fairness(allocs: &[f64]) -> f64 {
    if allocs.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocs.iter().sum();
    let sumsq: f64 = allocs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocs.len() as f64 * sumsq)
}

/// Convergence time of a `(time, value)` series: the earliest time from
/// which the value stays at or above `target` through the end of the
/// series. `None` when the series is empty or the value dips below the
/// target after every crossing — a flapping metric has not converged.
///
/// The fairness subsystem feeds this the windowed Jain-index series with
/// `target = 1 − ε` to get the convergence-to-ε time; it is equally usable
/// on utilization or delivery-ratio series.
pub fn convergence_time(series: &[(f64, f64)], target: f64) -> Option<f64> {
    let mut since = None;
    for &(t, v) in series {
        if v >= target {
            since.get_or_insert(t);
        } else {
            since = None;
        }
    }
    since
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        let b = Welford::new();
        a.add(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 97.0, "p99 {p99}");
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0);
        h.add(50.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_index_two_flow_hand_computed_cases() {
        // Equal shares: perfectly fair.
        assert!((jain_fairness(&[50e6, 50e6]) - 1.0).abs() < 1e-12);
        // One hog: 1/n = 1/2.
        assert!((jain_fairness(&[100e6, 0.0]) - 0.5).abs() < 1e-12);
        // 3:1 split: (3+1)² / (2 · (9+1)) = 16/20 = 0.8.
        assert!((jain_fairness(&[3.0, 1.0]) - 0.8).abs() < 1e-12);
        // Scale invariance: same split at line rate.
        assert!((jain_fairness(&[75e6, 25e6]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn jain_index_four_flow_hand_computed_cases() {
        // Equal quarters: 1.0.
        assert!((jain_fairness(&[25.0, 25.0, 25.0, 25.0]) - 1.0).abs() < 1e-12);
        // One hog: 1/n = 1/4.
        assert!((jain_fairness(&[1e9, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // 4:2:2:2 split: (10)² / (4 · (16+4+4+4)) = 100/112.
        assert!((jain_fairness(&[4.0, 2.0, 2.0, 2.0]) - 100.0 / 112.0).abs() < 1e-12);
        // Two pairs at 2:1: (6)² / (4 · (4+4+1+1)) = 36/40 = 0.9.
        assert!((jain_fairness(&[2.0, 2.0, 1.0, 1.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn convergence_finds_the_last_upward_crossing() {
        let s = [
            (1.0, 0.2),
            (2.0, 0.96),
            (3.0, 0.5),
            (4.0, 0.97),
            (5.0, 0.99),
        ];
        assert_eq!(convergence_time(&s, 0.95), Some(4.0));
        // Converged from the first sample.
        assert_eq!(convergence_time(&s, 0.1), Some(1.0));
        // Never converges / empty series.
        assert_eq!(convergence_time(&s, 0.999), None);
        assert_eq!(convergence_time(&[], 0.5), None);
        // A final dip un-converges the whole series.
        let flap = [(1.0, 0.99), (2.0, 0.99), (3.0, 0.1)];
        assert_eq!(convergence_time(&flap, 0.95), None);
    }
}
