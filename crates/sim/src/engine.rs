//! The discrete-event engine: a model, a clock and the pending-event queue.
//!
//! The engine follows the classic ns-2 style: the model owns *all* simulation
//! state, and handling an event may schedule further events through the
//! [`Scheduler`] handle. The engine never inspects event payloads; it only
//! guarantees causal, deterministic ordering.

use crate::queue::{EventId, EventQueue, QueueCounters};
use crate::time::{SimDuration, SimTime};

/// Scheduling interface handed to the model while it processes an event.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulation time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time. Must not be in the past.
    pub fn at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={:?} requested={:?}",
            self.now,
            time
        );
        self.queue.schedule_at(time, event)
    }

    /// Schedule an event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule_at(self.now + delay, event)
    }

    /// Schedule an event at the current instant (fires after already-pending
    /// same-instant events, preserving insertion order).
    pub fn immediately(&mut self, event: E) -> EventId {
        self.queue.schedule_at(self.now, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Ask the engine to stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A simulation model: the closed world of state that events act upon.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at its scheduled time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Statistics about an engine run, for sanity checks and perf reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events dispatched to the model.
    pub events_processed: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// True if the run ended because the event queue drained.
    pub drained: bool,
    /// True if the model requested an early stop.
    pub stopped_by_model: bool,
    /// True if the run ended because the lifetime [`Engine::event_budget`]
    /// was exhausted (the watchdog fired).
    pub budget_exhausted: bool,
}

/// The discrete-event simulation engine.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    events_processed: u64,
    /// Hard cap on dispatched events; guards against runaway schedules in
    /// experiments (a full 25 s paper run is ~10^6 events).
    pub event_limit: u64,
    /// Soft, non-panicking watchdog: when set, [`Engine::run_until`] stops
    /// once the engine's *lifetime* event count reaches the budget and
    /// reports it via [`RunStats::budget_exhausted`]. Unlike
    /// [`Engine::event_limit`] (a per-call panic against runaway schedules),
    /// this ends an un-completable run gracefully so its partial results can
    /// still be reported.
    pub event_budget: Option<u64>,
}

impl<M: Model> Engine<M> {
    /// Create an engine at t = 0 around `model`.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_processed: 0,
            event_limit: u64::MAX,
            event_budget: None,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for pre-run configuration and post-run
    /// inspection; mutating mid-run between `step` calls is allowed and is how
    /// external drivers inject work).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedule an initial event before (or between) runs.
    pub fn schedule_at(&mut self, time: SimTime, event: M::Event) -> EventId {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.schedule_at(time, event)
    }

    /// Number of live pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The event queue's activity counters (pops, wheel-vs-heap placement,
    /// migrations, cancels, tombstone sweeps). Always maintained; reading
    /// them costs nothing beyond this copy.
    pub fn queue_counters(&self) -> QueueCounters {
        self.queue.counters()
    }

    /// Dispatch one already-popped event. Returns false if the model
    /// requested a stop.
    #[inline]
    fn dispatch(&mut self, time: SimTime, event: M::Event) -> bool {
        debug_assert!(time >= self.now, "event queue violated causality");
        self.now = time;
        self.events_processed += 1;
        let mut stop = false;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut stop,
        };
        self.model.handle(event, &mut sched);
        !stop
    }

    /// Dispatch the single earliest event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(time, event)
    }

    /// Run until the queue drains, the model requests a stop, or the horizon
    /// is passed. Events scheduled exactly at `horizon` still fire.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        let start_events = self.events_processed;
        let mut drained = false;
        let mut stopped_by_model = false;
        let mut budget_exhausted = false;
        loop {
            if self
                .event_budget
                .is_some_and(|b| self.events_processed >= b)
            {
                // Only report exhaustion while in-horizon work remains (the
                // cold path, so the extra peek costs nothing in steady state).
                match self.queue.peek_time() {
                    None => drained = true,
                    Some(t) if t > horizon => {}
                    Some(_) => budget_exhausted = true,
                }
                break;
            }
            // The bounded pop fuses the peek-then-pop pair into one bucket
            // scan — the hot loop touches the cursor bucket exactly once per
            // event.
            let Some((time, event)) = self.queue.pop_at_or_before(horizon) else {
                drained = self.queue.is_empty();
                break;
            };
            if self.events_processed - start_events >= self.event_limit {
                panic!(
                    "event limit {} exceeded at t={:?}; runaway schedule?",
                    self.event_limit, self.now
                );
            }
            if !self.dispatch(time, event) {
                stopped_by_model = true;
                break;
            }
        }
        // Advance the clock to the horizon so rate computations over the whole
        // window are well-defined even if the last event fired earlier. A
        // budget-truncated run keeps its clock at the last dispatched event:
        // the simulated span really did end there.
        if !stopped_by_model && !budget_exhausted && self.now < horizon && horizon != SimTime::MAX {
            self.now = horizon;
        }
        RunStats {
            events_processed: self.events_processed - start_events,
            end_time: self.now,
            drained,
            stopped_by_model,
            budget_exhausted,
        }
    }

    /// Run until the queue drains or the model stops.
    pub fn run_to_completion(&mut self) -> RunStats {
        self.run_until(SimTime::MAX)
    }

    /// Process every event strictly before `end`, leaving the clock at the
    /// last fired event. Returns the number of events processed.
    ///
    /// This is the inner step of the sharded executor's lookahead window
    /// `[start, end)`: unlike [`Engine::run_until`] the bound is exclusive
    /// and the clock is *not* advanced to `end`, so events injected later at
    /// exactly `end` (cross-shard arrivals) still satisfy the monotonicity
    /// assert in [`Engine::schedule_at`].
    pub fn run_window(&mut self, end: SimTime) -> u64 {
        let start_events = self.events_processed;
        while let Some((time, event)) = self.queue.pop_before(end) {
            if self.events_processed - start_events >= self.event_limit {
                panic!(
                    "event limit {} exceeded at t={:?}; runaway schedule?",
                    self.event_limit, self.now
                );
            }
            if !self.dispatch(time, event) {
                break;
            }
        }
        self.events_processed - start_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that re-schedules itself `remaining` times at a fixed period.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _ev: (), sched: &mut Scheduler<'_, ()>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(self.period, ());
            }
        }
    }

    #[test]
    fn periodic_self_scheduling() {
        let mut eng = Engine::new(Ticker {
            period: SimDuration::from_millis(10),
            remaining: 4,
            fired_at: vec![],
        });
        eng.schedule_at(SimTime::ZERO, ());
        let stats = eng.run_to_completion();
        assert!(stats.drained);
        assert_eq!(stats.events_processed, 5);
        let times: Vec<u64> = eng
            .model()
            .fired_at
            .iter()
            .map(|t| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn horizon_cuts_run_and_advances_clock() {
        let mut eng = Engine::new(Ticker {
            period: SimDuration::from_millis(10),
            remaining: 1000,
            fired_at: vec![],
        });
        eng.schedule_at(SimTime::ZERO, ());
        let stats = eng.run_until(SimTime::from_millis(35));
        assert!(!stats.drained);
        // Events at 0, 10, 20, 30 fire; 40 is beyond the horizon.
        assert_eq!(stats.events_processed, 4);
        assert_eq!(eng.now(), SimTime::from_millis(35));
        // Continuing picks up where we left off.
        let stats2 = eng.run_until(SimTime::from_millis(55));
        assert_eq!(stats2.events_processed, 2); // 40, 50
    }

    #[test]
    fn run_window_is_exclusive_and_keeps_clock() {
        let mut eng = Engine::new(Ticker {
            period: SimDuration::from_millis(10),
            remaining: 1000,
            fired_at: vec![],
        });
        eng.schedule_at(SimTime::ZERO, ());
        // Window [0, 30): events at 0, 10, 20 fire; 30 waits.
        assert_eq!(eng.run_window(SimTime::from_millis(30)), 3);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        // An injection at exactly the window boundary is legal; the ticker
        // chain and the injected chain each fire at 30, 40, 50.
        eng.schedule_at(SimTime::from_millis(30), ());
        assert_eq!(eng.run_window(SimTime::from_millis(60)), 6);
        assert_eq!(eng.now(), SimTime::from_millis(50));
    }

    struct Stopper {
        stop_on: u32,
        count: u32,
    }
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.count += 1;
            if ev == self.stop_on {
                sched.request_stop();
            } else {
                sched.after(SimDuration::from_nanos(1), ev + 1);
            }
        }
    }

    #[test]
    fn model_can_stop_the_run() {
        let mut eng = Engine::new(Stopper {
            stop_on: 5,
            count: 0,
        });
        eng.schedule_at(SimTime::ZERO, 0);
        let stats = eng.run_to_completion();
        assert!(stats.stopped_by_model);
        assert_eq!(eng.model().count, 6);
    }

    struct Canceller {
        cancelled_fired: bool,
    }
    enum CEv {
        Arm,
        ShouldNotFire,
    }
    impl Model for Canceller {
        type Event = CEv;
        fn handle(&mut self, ev: CEv, sched: &mut Scheduler<'_, CEv>) {
            match ev {
                CEv::Arm => {
                    let id = sched.after(SimDuration::from_secs(1), CEv::ShouldNotFire);
                    assert!(sched.cancel(id));
                }
                CEv::ShouldNotFire => self.cancelled_fired = true,
            }
        }
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(Canceller {
            cancelled_fired: false,
        });
        eng.schedule_at(SimTime::ZERO, CEv::Arm);
        eng.run_to_completion();
        assert!(!eng.model().cancelled_fired);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                sched.at(SimTime::ZERO, ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule_at(SimTime::from_secs(1), ());
        eng.run_to_completion();
    }

    #[test]
    fn event_budget_truncates_gracefully() {
        let mut eng = Engine::new(Ticker {
            period: SimDuration::from_millis(1),
            remaining: u32::MAX,
            fired_at: vec![],
        });
        eng.event_budget = Some(100);
        eng.schedule_at(SimTime::ZERO, ());
        let stats = eng.run_until(SimTime::from_secs(10));
        assert!(stats.budget_exhausted);
        assert!(!stats.drained);
        assert!(!stats.stopped_by_model);
        assert_eq!(stats.events_processed, 100);
        // The clock stays at the last dispatched event, not the horizon.
        assert_eq!(eng.now(), SimTime::from_millis(99));
        // The budget is a lifetime total: a resumed run stops immediately.
        let stats2 = eng.run_until(SimTime::from_secs(10));
        assert!(stats2.budget_exhausted);
        assert_eq!(stats2.events_processed, 0);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway() {
        let mut eng = Engine::new(Ticker {
            period: SimDuration::ZERO,
            remaining: u32::MAX,
            fired_at: vec![],
        });
        eng.event_limit = 1000;
        eng.schedule_at(SimTime::ZERO, ());
        eng.run_to_completion();
    }
}
