//! Property-based tests for the simulation engine primitives.

use proptest::prelude::*;
use rss_sim::{
    convergence_time, jain_fairness, EventQueue, SimDuration, SimTime, TimeSeries, Welford,
};

/// Reference model for the calendar-wheel scheduler: a plain max-heap of
/// `Reverse(time, seq)` with a cancelled-id set, i.e. the data structure the
/// production queue replaced. Any divergence in pop order or length between
/// the two is a bug in the optimized queue.
#[derive(Default)]
struct ReferenceQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    cancelled: std::collections::HashSet<u64>,
    payload: std::collections::HashMap<u64, usize>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn schedule(&mut self, t: u64, payload: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((t, seq)));
        self.payload.insert(seq, payload);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if self.payload.contains_key(&seq) {
            self.payload.remove(&seq);
            self.cancelled.insert(seq);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        while let Some(std::cmp::Reverse((t, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            let p = self.payload.remove(&seq).expect("payload missing");
            return Some((t, p));
        }
        None
    }

    fn len(&self) -> usize {
        self.payload.len()
    }
}

proptest! {
    /// The event queue pops events in non-decreasing time order, and equal
    /// timestamps preserve insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t.as_nanos(), id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated at equal time");
            }
        }
    }

    /// The calendar-wheel queue is a drop-in replacement for the reference
    /// heap model: identical pop order, lengths and cancel outcomes across
    /// random schedule/cancel/pop interleavings. Times mix three scales —
    /// nanosecond-dense (heavy same-instant ties), sub-horizon and far
    /// beyond the wheel horizon (heap-fallback + migration paths).
    #[test]
    fn scheduler_is_drop_in_for_reference_heap(
        ops in prop::collection::vec((0u8..6, 0u64..40, 0usize..64), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut ids = Vec::new(); // (production id, model seq), issue order
        for (i, &(sel, t_raw, pick)) in ops.iter().enumerate() {
            match sel {
                // Schedule at one of three time scales; payload = op index.
                0..=2 => {
                    let t = match sel {
                        0 => t_raw,                     // dense: plenty of ties
                        1 => t_raw * 10_000_000,        // within one revolution
                        _ => t_raw * 40_000_000_000,    // far beyond the horizon
                    };
                    let id = q.schedule_at(SimTime::from_nanos(t), i);
                    let seq = reference.schedule(t, i);
                    ids.push((id, seq));
                }
                // Cancel a previously issued id (may already be dead).
                3..=4 => {
                    if !ids.is_empty() {
                        let (id, seq) = ids[pick % ids.len()];
                        prop_assert_eq!(q.cancel(id), reference.cancel(seq));
                    }
                }
                // Pop.
                _ => {
                    let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, reference.pop());
                }
            }
            prop_assert_eq!(q.len(), reference.len());
            prop_assert_eq!(
                q.peek_time().map(|t| t.as_nanos()),
                reference.heap.iter().map(|r| r.0).filter(|&(_, s)| !reference.cancelled.contains(&s)).min().map(|(t, _)| t)
            );
        }
        // Drain both: the tails must match exactly.
        loop {
            let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = reference.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation(times in prop::collection::vec(0u64..1_000, 1..100),
                                cancel_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in &ids {
            if *cancel_mask.get(*i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.insert(*i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, id)) = q.pop() {
            seen.insert(id);
        }
        prop_assert_eq!(seen.len() + cancelled.len(), times.len());
        for c in &cancelled {
            prop_assert!(!seen.contains(c), "cancelled event fired");
        }
    }

    /// Binned sums conserve the total of in-range samples.
    #[test]
    fn binned_sums_conserve_mass(samples in prop::collection::vec((0u64..10_000, -100.0f64..100.0), 0..200)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new("x");
        for &(t, v) in &sorted {
            ts.push(SimTime::from_micros(t), v);
        }
        let end = SimTime::from_micros(10_000);
        let bins = ts.binned_sums(SimTime::ZERO, end, SimDuration::from_micros(37));
        let total: f64 = bins.iter().map(|&(_, v)| v).sum();
        let expect: f64 = sorted
            .iter()
            .filter(|&&(t, _)| t < 10_000)
            .map(|&(_, v)| v)
            .sum();
        prop_assert!((total - expect).abs() < 1e-6, "{total} vs {expect}");
    }

    /// Welford merge is equivalent to sequential accumulation for any split.
    #[test]
    fn welford_merge_any_split(xs in prop::collection::vec(-1e6f64..1e6, 1..300), split in 0usize..300) {
        let split = split.min(xs.len());
        let mut seq = Welford::new();
        for &x in &xs {
            seq.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        let scale = seq.mean().abs().max(1.0);
        prop_assert!((a.mean() - seq.mean()).abs() / scale < 1e-9);
        let vscale = seq.variance().abs().max(1.0);
        prop_assert!((a.variance() - seq.variance()).abs() / vscale < 1e-6);
    }

    /// Jain's fairness index stays in (0, 1] for any non-degenerate
    /// allocation vector, hits 1 exactly on equal shares, and is bounded
    /// below by 1/n (one hog).
    #[test]
    fn jain_fairness_stays_in_unit_interval(
        allocs in prop::collection::vec(0.0f64..1e9, 1..32),
        equal in 1e3f64..1e9,
        n in 1usize..32,
    ) {
        let j = jain_fairness(&allocs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "index {j} outside (0, 1]");
        if allocs.iter().any(|&x| x > 0.0) {
            prop_assert!(
                j >= 1.0 / allocs.len() as f64 - 1e-12,
                "index {j} below the 1/n floor for {} flows",
                allocs.len()
            );
        }
        // Equal allocations are exactly fair at any scale and count.
        let same = vec![equal; n];
        prop_assert!((jain_fairness(&same) - 1.0).abs() < 1e-12);
    }

    /// Convergence time, when reported, names a sample at or above the
    /// target whose suffix never dips below it.
    #[test]
    fn convergence_time_is_a_stable_suffix(
        values in prop::collection::vec(0.0f64..1.0, 1..100),
        target in 0.1f64..0.99,
    ) {
        let series: Vec<(f64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        match convergence_time(&series, target) {
            Some(t) => {
                let idx = t as usize;
                prop_assert!(series[idx..].iter().all(|&(_, v)| v >= target));
                prop_assert!(idx == 0 || series[idx - 1].1 < target, "not the earliest");
            }
            None => prop_assert!(series.last().unwrap().1 < target),
        }
    }

    /// Time-weighted mean lies within the sample range.
    #[test]
    fn time_weighted_mean_within_bounds(samples in prop::collection::vec((0u64..1_000, 0.0f64..50.0), 2..100)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new("x");
        for &(t, v) in &sorted {
            ts.push(SimTime::from_millis(t), v);
        }
        if let Some(m) = ts.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(2)) {
            let lo = sorted.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let hi = sorted.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {m} outside [{lo}, {hi}]");
        }
    }
}
