//! Property-based tests for the simulation engine primitives.

use proptest::prelude::*;
use rss_sim::{EventQueue, SimDuration, SimTime, TimeSeries, Welford};

proptest! {
    /// The event queue pops events in non-decreasing time order, and equal
    /// timestamps preserve insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t.as_nanos(), id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated at equal time");
            }
        }
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation(times in prop::collection::vec(0u64..1_000, 1..100),
                                cancel_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in &ids {
            if *cancel_mask.get(*i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.insert(*i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, id)) = q.pop() {
            seen.insert(id);
        }
        prop_assert_eq!(seen.len() + cancelled.len(), times.len());
        for c in &cancelled {
            prop_assert!(!seen.contains(c), "cancelled event fired");
        }
    }

    /// Binned sums conserve the total of in-range samples.
    #[test]
    fn binned_sums_conserve_mass(samples in prop::collection::vec((0u64..10_000, -100.0f64..100.0), 0..200)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new("x");
        for &(t, v) in &sorted {
            ts.push(SimTime::from_micros(t), v);
        }
        let end = SimTime::from_micros(10_000);
        let bins = ts.binned_sums(SimTime::ZERO, end, SimDuration::from_micros(37));
        let total: f64 = bins.iter().map(|&(_, v)| v).sum();
        let expect: f64 = sorted
            .iter()
            .filter(|&&(t, _)| t < 10_000)
            .map(|&(_, v)| v)
            .sum();
        prop_assert!((total - expect).abs() < 1e-6, "{total} vs {expect}");
    }

    /// Welford merge is equivalent to sequential accumulation for any split.
    #[test]
    fn welford_merge_any_split(xs in prop::collection::vec(-1e6f64..1e6, 1..300), split in 0usize..300) {
        let split = split.min(xs.len());
        let mut seq = Welford::new();
        for &x in &xs {
            seq.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        let scale = seq.mean().abs().max(1.0);
        prop_assert!((a.mean() - seq.mean()).abs() / scale < 1e-9);
        let vscale = seq.variance().abs().max(1.0);
        prop_assert!((a.variance() - seq.variance()).abs() / vscale < 1e-6);
    }

    /// Time-weighted mean lies within the sample range.
    #[test]
    fn time_weighted_mean_within_bounds(samples in prop::collection::vec((0u64..1_000, 0.0f64..50.0), 2..100)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new("x");
        for &(t, v) in &sorted {
            ts.push(SimTime::from_millis(t), v);
        }
        if let Some(m) = ts.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(2)) {
            let lo = sorted.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let hi = sorted.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {m} outside [{lo}, {hi}]");
        }
    }
}
