//! The per-connection instrument variables.
//!
//! Naming follows the Web100 TCP Kernel Instrument Set (TCP-KIS) the paper
//! read its results from ("We use web100 to get detailed statistics of the
//! TCP state information", §4). Only sender-side variables relevant to the
//! evaluation are modelled; the semantics match the TCP-KIS draft:
//! counters are monotone, gauges track the current value, and the
//! `SndLimTime*` accumulators partition wall time by what limited the sender.

use serde::{Deserialize, Serialize};

/// What currently limits the sender (TCP-KIS "SndLim" states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SndLimState {
    /// Limited by the receiver's advertised window.
    Rwin,
    /// Limited by the congestion window.
    Cwnd,
    /// Limited by the sending application / local resources.
    Sender,
}

/// Classification of congestion signals (TCP-KIS `CongestionSignals` plus a
/// breakdown of the local variety the paper is about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionKind {
    /// Triple-duplicate-ACK fast retransmit (network congestion).
    FastRetransmit,
    /// Retransmission timeout (network congestion, severe).
    Timeout,
    /// Local send-stall: the IFQ rejected a segment (host congestion).
    SendStall,
    /// ECN echo accepted by the sender's once-per-RTT gate: the network
    /// CE-marked a packet instead of dropping it (RFC 3168).
    EcnEcho,
}

/// The instrument block's monotone counters and gauges.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Web100Vars {
    // --- traffic counters -------------------------------------------------
    /// Data segments transmitted (including retransmissions).
    pub pkts_out: u64,
    /// Data bytes transmitted (including retransmissions).
    pub data_bytes_out: u64,
    /// Segments retransmitted.
    pub pkts_retrans: u64,
    /// Bytes retransmitted.
    pub bytes_retrans: u64,
    /// Pure ACK segments received.
    pub ack_pkts_in: u64,
    /// Bytes newly acknowledged (`ThruBytesAcked` in TCP-KIS).
    pub thru_bytes_acked: u64,

    // --- congestion counters ---------------------------------------------
    /// All congestion signals (fast retransmits + timeouts + send-stalls).
    pub congestion_signals: u64,
    /// Fast-retransmit episodes.
    pub fast_retran: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Send-stall events (the variable Figure 1 plots).
    pub send_stall: u64,
    /// ECN echoes the sender reacted to (one CWR-style reduction each).
    pub ecn_echoes: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,

    // --- window gauges -----------------------------------------------------
    /// Current congestion window, bytes.
    pub cur_cwnd: u64,
    /// Largest congestion window seen, bytes.
    pub max_cwnd: u64,
    /// Current slow-start threshold, bytes.
    pub cur_ssthresh: u64,
    /// Current receiver-advertised window, bytes.
    pub cur_rwin_rcvd: u64,

    // --- path gauges --------------------------------------------------------
    /// Smoothed RTT estimate, microseconds.
    pub smoothed_rtt_us: u64,
    /// Minimum RTT sample, microseconds.
    pub min_rtt_us: u64,
    /// Maximum RTT sample, microseconds.
    pub max_rtt_us: u64,
    /// Current retransmission timeout, microseconds.
    pub cur_rto_us: u64,

    // --- slow-start bookkeeping ---------------------------------------------
    /// Times the connection (re-)entered slow-start.
    pub slow_start_episodes: u64,
    /// Times the connection entered congestion avoidance.
    pub cong_avoid_episodes: u64,

    // --- sender-limitation accumulators (nanoseconds) ----------------------
    /// Time limited by the receiver window.
    pub snd_lim_time_rwin_ns: u64,
    /// Time limited by the congestion window.
    pub snd_lim_time_cwnd_ns: u64,
    /// Time limited by the sender itself (app or local queues).
    pub snd_lim_time_sender_ns: u64,
}

impl Web100Vars {
    /// Counter difference `self − earlier`, the Web100 "snapshot delta" idiom
    /// (read a snapshot, run a phase, read again, subtract). Monotone
    /// counters subtract (saturating); gauges keep the newer value.
    pub fn delta(&self, earlier: &Web100Vars) -> Web100Vars {
        Web100Vars {
            // counters
            pkts_out: self.pkts_out.saturating_sub(earlier.pkts_out),
            data_bytes_out: self.data_bytes_out.saturating_sub(earlier.data_bytes_out),
            pkts_retrans: self.pkts_retrans.saturating_sub(earlier.pkts_retrans),
            bytes_retrans: self.bytes_retrans.saturating_sub(earlier.bytes_retrans),
            ack_pkts_in: self.ack_pkts_in.saturating_sub(earlier.ack_pkts_in),
            thru_bytes_acked: self
                .thru_bytes_acked
                .saturating_sub(earlier.thru_bytes_acked),
            congestion_signals: self
                .congestion_signals
                .saturating_sub(earlier.congestion_signals),
            fast_retran: self.fast_retran.saturating_sub(earlier.fast_retran),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            send_stall: self.send_stall.saturating_sub(earlier.send_stall),
            ecn_echoes: self.ecn_echoes.saturating_sub(earlier.ecn_echoes),
            dup_acks_in: self.dup_acks_in.saturating_sub(earlier.dup_acks_in),
            slow_start_episodes: self
                .slow_start_episodes
                .saturating_sub(earlier.slow_start_episodes),
            cong_avoid_episodes: self
                .cong_avoid_episodes
                .saturating_sub(earlier.cong_avoid_episodes),
            snd_lim_time_rwin_ns: self
                .snd_lim_time_rwin_ns
                .saturating_sub(earlier.snd_lim_time_rwin_ns),
            snd_lim_time_cwnd_ns: self
                .snd_lim_time_cwnd_ns
                .saturating_sub(earlier.snd_lim_time_cwnd_ns),
            snd_lim_time_sender_ns: self
                .snd_lim_time_sender_ns
                .saturating_sub(earlier.snd_lim_time_sender_ns),
            // gauges: keep the current reading
            cur_cwnd: self.cur_cwnd,
            max_cwnd: self.max_cwnd,
            cur_ssthresh: self.cur_ssthresh,
            cur_rwin_rcvd: self.cur_rwin_rcvd,
            smoothed_rtt_us: self.smoothed_rtt_us,
            min_rtt_us: self.min_rtt_us,
            max_rtt_us: self.max_rtt_us,
            cur_rto_us: self.cur_rto_us,
        }
    }

    /// Mean goodput in bits/s implied by `thru_bytes_acked` over a window.
    pub fn goodput_over(&self, window_secs: f64) -> f64 {
        if window_secs <= 0.0 {
            return 0.0;
        }
        self.thru_bytes_acked as f64 * 8.0 / window_secs
    }

    /// Retransmission rate: retransmitted packets / packets out.
    pub fn retrans_rate(&self) -> f64 {
        if self.pkts_out == 0 {
            0.0
        } else {
            self.pkts_retrans as f64 / self.pkts_out as f64
        }
    }

    /// Render the counters as `name,value` CSV lines (sorted, stable order).
    pub fn to_csv(&self) -> String {
        let rows: &[(&str, u64)] = &[
            ("AckPktsIn", self.ack_pkts_in),
            ("BytesRetrans", self.bytes_retrans),
            ("CongAvoidEpisodes", self.cong_avoid_episodes),
            ("CongestionSignals", self.congestion_signals),
            ("CurCwnd", self.cur_cwnd),
            ("CurRTO_us", self.cur_rto_us),
            ("CurRwinRcvd", self.cur_rwin_rcvd),
            ("CurSsthresh", self.cur_ssthresh),
            ("DataBytesOut", self.data_bytes_out),
            ("DupAcksIn", self.dup_acks_in),
            ("EcnEchoes", self.ecn_echoes),
            ("FastRetran", self.fast_retran),
            ("MaxCwnd", self.max_cwnd),
            ("MaxRTT_us", self.max_rtt_us),
            ("MinRTT_us", self.min_rtt_us),
            ("PktsOut", self.pkts_out),
            ("PktsRetrans", self.pkts_retrans),
            ("SendStall", self.send_stall),
            ("SlowStartEpisodes", self.slow_start_episodes),
            ("SmoothedRTT_us", self.smoothed_rtt_us),
            ("SndLimTimeCwnd_ns", self.snd_lim_time_cwnd_ns),
            ("SndLimTimeRwin_ns", self.snd_lim_time_rwin_ns),
            ("SndLimTimeSender_ns", self.snd_lim_time_sender_ns),
            ("ThruBytesAcked", self.thru_bytes_acked),
            ("Timeouts", self.timeouts),
        ];
        let mut out = String::from("variable,value\n");
        for (name, v) in rows {
            out.push_str(name);
            out.push(',');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let early = Web100Vars {
            pkts_out: 100,
            data_bytes_out: 100_000,
            send_stall: 1,
            cur_cwnd: 5_000,
            max_cwnd: 9_000,
            min_rtt_us: 50_000,
            ..Default::default()
        };
        let late = Web100Vars {
            pkts_out: 250,
            data_bytes_out: 260_000,
            send_stall: 3,
            cur_cwnd: 2_000,
            max_cwnd: 12_000,
            min_rtt_us: 48_000,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.pkts_out, 150);
        assert_eq!(d.data_bytes_out, 160_000);
        assert_eq!(d.send_stall, 2);
        assert_eq!(d.cur_cwnd, 2_000, "gauge keeps newest");
        assert_eq!(d.max_cwnd, 12_000);
        assert_eq!(d.min_rtt_us, 48_000);
    }

    #[test]
    fn derived_rates() {
        let v = Web100Vars {
            thru_bytes_acked: 1_250_000,
            pkts_out: 1000,
            pkts_retrans: 25,
            ..Default::default()
        };
        assert!((v.goodput_over(1.0) - 10_000_000.0).abs() < 1.0);
        assert_eq!(v.goodput_over(0.0), 0.0);
        assert!((v.retrans_rate() - 0.025).abs() < 1e-12);
        assert_eq!(Web100Vars::default().retrans_rate(), 0.0);
    }

    #[test]
    fn csv_contains_paper_variables() {
        let v = Web100Vars {
            send_stall: 4,
            cur_cwnd: 123,
            ..Default::default()
        };
        let csv = v.to_csv();
        assert!(csv.contains("SendStall,4\n"));
        assert!(csv.contains("CurCwnd,123\n"));
        assert!(csv.starts_with("variable,value\n"));
        assert_eq!(csv.lines().count(), 26);
    }
}
