//! # rss-web100 — Web100-style per-connection instrumentation
//!
//! The paper reads its entire evaluation out of Web100, the kernel instrument
//! set that exposes internal TCP state as per-connection variables ("We use
//! web100 to get detailed statistics of the TCP state information", §4).
//! Figure 1 is literally a plot of one Web100 counter — the cumulative
//! send-stall signal count — over time.
//!
//! This crate reproduces that observability layer for the simulated stack:
//! an [`InstrumentBlock`] per connection with TCP-KIS-named counters
//! ([`Web100Vars`]), timestamped event logs for stalls and congestion
//! signals, and time series for cwnd, IFQ depth and acked bytes.

#![warn(missing_docs)]

pub mod instrument;
pub mod vars;

pub use instrument::InstrumentBlock;
pub use vars::{CongestionKind, SndLimState, Web100Vars};
