//! The live instrument block: the hooks the TCP stack calls, the counters
//! they update, and the time-series the experiment harness reads back.

use crate::vars::{CongestionKind, SndLimState, Web100Vars};
use rss_sim::{EventCounter, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Per-connection instrumentation, updated synchronously by the TCP stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstrumentBlock {
    vars: Web100Vars,
    /// Timestamps of every send-stall (Figure 1's series).
    send_stalls: EventCounter,
    /// Timestamps of every congestion signal of any kind.
    congestion_events: EventCounter,
    /// cwnd samples over time (bytes).
    cwnd_series: TimeSeries,
    /// IFQ occupancy samples over time (packets) — our addition; the paper's
    /// controller observes this signal.
    ifq_series: TimeSeries,
    /// Cumulative acked bytes over time, for throughput plots.
    acked_series: TimeSeries,
    lim_state: SndLimState,
    lim_since_ns: u64,
    /// Sampling stride for the dense series (every Nth update is recorded);
    /// 1 records everything.
    pub sample_stride: u32,
    cwnd_updates: u32,
    ifq_updates: u32,
}

impl Default for InstrumentBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl InstrumentBlock {
    /// Fresh block at t = 0.
    pub fn new() -> Self {
        InstrumentBlock {
            vars: Web100Vars::default(),
            send_stalls: EventCounter::new(),
            congestion_events: EventCounter::new(),
            cwnd_series: TimeSeries::new("cwnd_bytes"),
            ifq_series: TimeSeries::new("ifq_pkts"),
            acked_series: TimeSeries::new("acked_bytes"),
            lim_state: SndLimState::Sender,
            lim_since_ns: 0,
            sample_stride: 1,
            cwnd_updates: 0,
            ifq_updates: 0,
        }
    }

    /// Read-only access to the counters.
    pub fn vars(&self) -> &Web100Vars {
        &self.vars
    }

    /// A copy of the counters (a Web100 "snapshot").
    pub fn snapshot(&self) -> Web100Vars {
        self.vars
    }

    /// Send-stall event log.
    pub fn send_stalls(&self) -> &EventCounter {
        &self.send_stalls
    }

    /// Congestion-signal event log (all kinds).
    pub fn congestion_events(&self) -> &EventCounter {
        &self.congestion_events
    }

    /// Congestion-window time series (bytes).
    pub fn cwnd_series(&self) -> &TimeSeries {
        &self.cwnd_series
    }

    /// IFQ-occupancy time series (packets).
    pub fn ifq_series(&self) -> &TimeSeries {
        &self.ifq_series
    }

    /// Cumulative acked-bytes time series.
    pub fn acked_series(&self) -> &TimeSeries {
        &self.acked_series
    }

    // --- hooks called by the TCP stack -------------------------------------

    /// A data segment left the stack.
    pub fn on_data_sent(&mut self, bytes: u32, is_retransmit: bool) {
        self.vars.pkts_out += 1;
        self.vars.data_bytes_out += bytes as u64;
        if is_retransmit {
            self.vars.pkts_retrans += 1;
            self.vars.bytes_retrans += bytes as u64;
        }
    }

    /// An ACK arrived acknowledging `newly_acked` fresh bytes.
    pub fn on_ack_in(&mut self, now: SimTime, newly_acked: u64, is_dup: bool) {
        self.vars.ack_pkts_in += 1;
        if is_dup {
            self.vars.dup_acks_in += 1;
        }
        if newly_acked > 0 {
            self.vars.thru_bytes_acked += newly_acked;
            self.acked_series
                .push(now, self.vars.thru_bytes_acked as f64);
        }
    }

    /// A congestion signal fired.
    pub fn on_congestion(&mut self, now: SimTime, kind: CongestionKind) {
        self.vars.congestion_signals += 1;
        self.congestion_events.record(now);
        match kind {
            CongestionKind::FastRetransmit => self.vars.fast_retran += 1,
            CongestionKind::Timeout => self.vars.timeouts += 1,
            CongestionKind::SendStall => {
                self.vars.send_stall += 1;
                self.send_stalls.record(now);
            }
            CongestionKind::EcnEcho => self.vars.ecn_echoes += 1,
        }
    }

    /// The congestion window changed.
    pub fn on_cwnd(&mut self, now: SimTime, cwnd_bytes: u64) {
        self.vars.cur_cwnd = cwnd_bytes;
        self.vars.max_cwnd = self.vars.max_cwnd.max(cwnd_bytes);
        self.cwnd_updates += 1;
        if self.cwnd_updates.is_multiple_of(self.sample_stride.max(1)) {
            self.cwnd_series.push(now, cwnd_bytes as f64);
        }
    }

    /// ssthresh changed.
    pub fn on_ssthresh(&mut self, ssthresh_bytes: u64) {
        self.vars.cur_ssthresh = ssthresh_bytes;
    }

    /// The receiver advertised a window.
    pub fn on_rwin(&mut self, rwin_bytes: u64) {
        self.vars.cur_rwin_rcvd = rwin_bytes;
    }

    /// A fresh RTT sample and derived estimates.
    pub fn on_rtt(&mut self, sample_us: u64, srtt_us: u64, rto_us: u64) {
        if self.vars.min_rtt_us == 0 {
            self.vars.min_rtt_us = sample_us;
        } else {
            self.vars.min_rtt_us = self.vars.min_rtt_us.min(sample_us);
        }
        self.vars.max_rtt_us = self.vars.max_rtt_us.max(sample_us);
        self.vars.smoothed_rtt_us = srtt_us;
        self.vars.cur_rto_us = rto_us;
    }

    /// The connection entered slow-start.
    pub fn on_enter_slow_start(&mut self) {
        self.vars.slow_start_episodes += 1;
    }

    /// The connection entered congestion avoidance.
    pub fn on_enter_cong_avoid(&mut self) {
        self.vars.cong_avoid_episodes += 1;
    }

    /// IFQ occupancy observed (the controller's process variable).
    pub fn on_ifq_depth(&mut self, now: SimTime, depth_pkts: u32) {
        self.ifq_updates += 1;
        if self.ifq_updates.is_multiple_of(self.sample_stride.max(1)) {
            self.ifq_series.push(now, depth_pkts as f64);
        }
    }

    /// The sender-limitation state machine moved to `state` at `now`.
    pub fn on_snd_lim(&mut self, now: SimTime, state: SndLimState) {
        let elapsed = now.as_nanos().saturating_sub(self.lim_since_ns);
        match self.lim_state {
            SndLimState::Rwin => self.vars.snd_lim_time_rwin_ns += elapsed,
            SndLimState::Cwnd => self.vars.snd_lim_time_cwnd_ns += elapsed,
            SndLimState::Sender => self.vars.snd_lim_time_sender_ns += elapsed,
        }
        self.lim_state = state;
        self.lim_since_ns = now.as_nanos();
    }

    /// Close out time accounting at the end of a run.
    pub fn finish(&mut self, now: SimTime) {
        let state = self.lim_state;
        self.on_snd_lim(now, state);
    }

    /// Mean goodput in bits/s over `[0, now]` from acked bytes.
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.vars.thru_bytes_acked as f64 * 8.0 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn data_and_retrans_counters() {
        let mut b = InstrumentBlock::new();
        b.on_data_sent(1448, false);
        b.on_data_sent(1448, false);
        b.on_data_sent(1448, true);
        let v = b.vars();
        assert_eq!(v.pkts_out, 3);
        assert_eq!(v.data_bytes_out, 3 * 1448);
        assert_eq!(v.pkts_retrans, 1);
        assert_eq!(v.bytes_retrans, 1448);
    }

    #[test]
    fn send_stall_feeds_figure1_series() {
        let mut b = InstrumentBlock::new();
        b.on_congestion(ms(500), CongestionKind::SendStall);
        b.on_congestion(ms(800), CongestionKind::FastRetransmit);
        b.on_congestion(ms(1200), CongestionKind::SendStall);
        let v = b.vars();
        assert_eq!(v.send_stall, 2);
        assert_eq!(v.congestion_signals, 3);
        assert_eq!(v.fast_retran, 1);
        assert_eq!(b.send_stalls().count(), 2);
        assert_eq!(b.send_stalls().count_at(ms(600)), 1);
        assert_eq!(b.congestion_events().count(), 3);
    }

    #[test]
    fn cwnd_tracking_and_max() {
        let mut b = InstrumentBlock::new();
        b.on_cwnd(ms(0), 2896);
        b.on_cwnd(ms(10), 5792);
        b.on_cwnd(ms(20), 2896);
        assert_eq!(b.vars().cur_cwnd, 2896);
        assert_eq!(b.vars().max_cwnd, 5792);
        assert_eq!(b.cwnd_series().len(), 3);
    }

    #[test]
    fn rtt_min_max_tracking() {
        let mut b = InstrumentBlock::new();
        b.on_rtt(60_000, 60_000, 240_000);
        b.on_rtt(75_000, 62_000, 250_000);
        b.on_rtt(58_000, 61_000, 245_000);
        let v = b.vars();
        assert_eq!(v.min_rtt_us, 58_000);
        assert_eq!(v.max_rtt_us, 75_000);
        assert_eq!(v.smoothed_rtt_us, 61_000);
        assert_eq!(v.cur_rto_us, 245_000);
    }

    #[test]
    fn snd_lim_partitions_time() {
        let mut b = InstrumentBlock::new();
        // Starts in Sender at t=0.
        b.on_snd_lim(ms(10), SndLimState::Cwnd);
        b.on_snd_lim(ms(40), SndLimState::Rwin);
        b.finish(ms(100));
        let v = b.vars();
        assert_eq!(v.snd_lim_time_sender_ns, 10_000_000);
        assert_eq!(v.snd_lim_time_cwnd_ns, 30_000_000);
        assert_eq!(v.snd_lim_time_rwin_ns, 60_000_000);
    }

    #[test]
    fn goodput_from_acks() {
        let mut b = InstrumentBlock::new();
        b.on_ack_in(ms(500), 125_000, false);
        b.on_ack_in(ms(1000), 125_000, false);
        // 250 kB in 1 s = 2 Mbit/s.
        assert!((b.goodput_bps(SimTime::from_secs(1)) - 2_000_000.0).abs() < 1.0);
        assert_eq!(b.acked_series().len(), 2);
        assert_eq!(b.vars().thru_bytes_acked, 250_000);
    }

    #[test]
    fn dup_acks_counted_separately() {
        let mut b = InstrumentBlock::new();
        b.on_ack_in(ms(1), 0, true);
        b.on_ack_in(ms(2), 0, true);
        b.on_ack_in(ms(3), 1448, false);
        let v = b.vars();
        assert_eq!(v.ack_pkts_in, 3);
        assert_eq!(v.dup_acks_in, 2);
        assert_eq!(v.thru_bytes_acked, 1448);
    }

    #[test]
    fn sample_stride_thins_series() {
        let mut b = InstrumentBlock::new();
        b.sample_stride = 10;
        for i in 0..100 {
            b.on_cwnd(ms(i), 1000 + i);
            b.on_ifq_depth(ms(i), i as u32);
        }
        assert_eq!(b.cwnd_series().len(), 10);
        assert_eq!(b.ifq_series().len(), 10);
        // Counters are unaffected by sampling.
        assert_eq!(b.vars().cur_cwnd, 1099);
    }

    #[test]
    fn episode_counters() {
        let mut b = InstrumentBlock::new();
        b.on_enter_slow_start();
        b.on_enter_cong_avoid();
        b.on_enter_slow_start();
        assert_eq!(b.vars().slow_start_episodes, 2);
        assert_eq!(b.vars().cong_avoid_episodes, 1);
    }
}
